// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "ckpt/fault_storage.h"

#include <utility>

#include "base/rng.h"
#include "base/strings.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace ckpt {
namespace {

bool IsCheckpointDataFile(const std::string& path) {
  return Basename(path).rfind("ckpt-", 0) == 0;
}

void RecordStorageInjection(const char* verb, int64_t iteration) {
  if (!obs::MetricsEnabled()) return;
  obs::Count("fault/injected");
  obs::Count(StrCat("ckpt/injected_", verb));
  (void)iteration;
}

}  // namespace

FaultInjectingStorage::FaultInjectingStorage(std::shared_ptr<Storage> inner,
                                             fault::FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {}

Status FaultInjectingStorage::CreateDir(const std::string& path) {
  return inner_->CreateDir(path);
}

Status FaultInjectingStorage::WriteFileSynced(const std::string& path,
                                              const std::string& data) {
  if (!IsCheckpointDataFile(path)) {
    return inner_->WriteFileSynced(path, data);
  }
  const int attempt = attempts_[iteration_]++;
  int enospc_budget = 0;
  bool torn = false;
  bool short_write = false;
  for (const fault::FaultEvent& event : plan_.events) {
    if (event.iteration != iteration_) continue;
    switch (event.kind) {
      case fault::FaultKind::kDiskFull:
        enospc_budget += event.count;
        break;
      case fault::FaultKind::kTornWrite:
        torn = true;
        break;
      case fault::FaultKind::kShortWrite:
        short_write = true;
        break;
      default:
        break;  // exchange/process verbs are not storage's business
    }
  }
  if (attempt < enospc_budget) {
    ++injected_;
    RecordStorageInjection("enospc", iteration_);
    return UnavailableError(StrCat("injected ENOSPC writing ", path,
                                   " at iteration ", iteration_,
                                   ", attempt ", attempt));
  }
  // Silent write lies strike the first post-ENOSPC attempt only; a retry
  // after the reader detects the damage would land clean, but the manager
  // never retries an "OK" write — detection happens at restore time.
  if (attempt == enospc_budget && torn) {
    ++injected_;
    RecordStorageInjection("torn", iteration_);
    std::string damaged = data;
    Rng rng(plan_.seed ^ static_cast<uint64_t>(iteration_));
    const int flips = rng.NextInt(1, 8);
    for (int i = 0; i < flips && !damaged.empty(); ++i) {
      const size_t third = damaged.size() / 3;
      const size_t pos =
          third + static_cast<size_t>(
                      rng.NextUint64(damaged.size() - third));
      damaged[pos] = static_cast<char>(
          damaged[pos] ^ static_cast<char>(rng.NextInt(1, 255)));
    }
    return inner_->WriteFileSynced(path, damaged);
  }
  if (attempt == enospc_budget && short_write) {
    ++injected_;
    RecordStorageInjection("shortwrite", iteration_);
    return inner_->WriteFileSynced(path, data.substr(0, data.size() / 2));
  }
  return inner_->WriteFileSynced(path, data);
}

StatusOr<std::string> FaultInjectingStorage::ReadFile(
    const std::string& path) {
  return inner_->ReadFile(path);
}

Status FaultInjectingStorage::AtomicRename(const std::string& from,
                                           const std::string& to) {
  return inner_->AtomicRename(from, to);
}

Status FaultInjectingStorage::Remove(const std::string& path) {
  return inner_->Remove(path);
}

StatusOr<std::vector<std::string>> FaultInjectingStorage::List(
    const std::string& dir) {
  return inner_->List(dir);
}

bool FaultInjectingStorage::Exists(const std::string& path) {
  return inner_->Exists(path);
}

void FaultInjectingStorage::SetFaultContext(int64_t iteration) {
  iteration_ = iteration;
  inner_->SetFaultContext(iteration);
}

}  // namespace ckpt
}  // namespace lpsgd
