// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_SIM_PERF_MODEL_H_
#define LPSGD_SIM_PERF_MODEL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "comm/allreduce.h"  // re-exports CommPrimitive / CommPrimitiveName
#include "comm/cost_model.h"
#include "machine/specs.h"
#include "nn/model_zoo.h"
#include "obs/json.h"
#include "quant/codec.h"
#include "quant/policy.h"

namespace lpsgd {

// Timing estimate for one training configuration (network x machine x
// GPU count x precision x primitive).
struct PerfEstimate {
  std::string network;
  std::string codec_label;
  CommPrimitive primitive = CommPrimitive::kMpi;
  int gpus = 1;
  int global_batch = 0;
  int per_gpu_batch = 0;

  double compute_seconds = 0.0;  // per iteration, per GPU (in parallel)
  double encode_seconds = 0.0;   // per iteration quantize/unquantize
  double comm_seconds = 0.0;     // per iteration wire + staging + latency
  int64_t wire_bytes = 0;        // one rank's encoded gradient
  int64_t raw_bytes = 0;         // one rank's fp32 gradient

  double IterationSeconds() const {
    return compute_seconds + encode_seconds + comm_seconds;
  }
  // Iteration time with ideal double buffering (Section 3.2.1: CNTK
  // overlaps the exchange of finished gradients with the remaining
  // backpropagation). This is the upper bound on overlap gains; the
  // paper's reported bars are the additive split above.
  double OverlappedIterationSeconds() const {
    return std::max(compute_seconds, encode_seconds + comm_seconds);
  }
  // All ratio helpers below return 0.0 on a zero denominator (an empty or
  // default-constructed estimate) instead of inf/NaN.
  double OverlappedSamplesPerSecond() const {
    const double seconds = OverlappedIterationSeconds();
    return seconds > 0.0 ? static_cast<double>(global_batch) / seconds : 0.0;
  }
  double SamplesPerSecond() const {
    const double seconds = IterationSeconds();
    return seconds > 0.0 ? static_cast<double>(global_batch) / seconds : 0.0;
  }
  double EpochSeconds(int64_t dataset_samples) const {
    if (global_batch <= 0) return 0.0;
    return static_cast<double>(dataset_samples) /
           static_cast<double>(global_batch) * IterationSeconds();
  }
  // Communication share of the iteration, counting encode/decode kernels
  // as communication overhead (the paper's bar-chart split).
  double CommFraction() const {
    const double seconds = IterationSeconds();
    return seconds > 0.0 ? (encode_seconds + comm_seconds) / seconds : 0.0;
  }
};

// The run-report "perf_estimate" entry for one estimate (PerfModel emits
// one per Estimate call into obs::RunReport::Global() while reporting is
// enabled, so every bench binary's --metrics_out output carries its full
// per-configuration compute/encode/comm split).
obs::JsonValue PerfEstimateToJson(const PerfEstimate& estimate);

// Analytic reproduction of the paper's performance methodology: compute
// time is calibrated to the paper's measured single-GPU throughput
// (Figure 10, 1-GPU column) and scaled by GPU architecture and per-GPU
// batch; communication time follows the aggregation algorithms of
// Section 2.4 with the codec's exact wire sizes.
class PerfModel {
 public:
  PerfModel(NetworkStats network, MachineSpec machine);

  const NetworkStats& network() const { return network_; }
  const MachineSpec& machine() const { return machine_; }

  // Estimates one configuration. Fails if the machine has fewer than
  // `gpus` GPUs, NCCL is requested beyond its GPU limit, or the network
  // has no batch size for `gpus`.
  StatusOr<PerfEstimate> Estimate(const CodecSpec& spec,
                                  CommPrimitive primitive, int gpus) const;

  // Scalability as defined in Section 5.3: samples/sec of the
  // configuration divided by the 1-GPU full-precision samples/sec.
  StatusOr<double> Scalability(const CodecSpec& spec,
                               CommPrimitive primitive, int gpus) const;

  // Dollar cost of running the published recipe (recipe_epochs) in this
  // configuration at the machine's hourly price.
  StatusOr<double> RecipeCostUsd(const CodecSpec& spec,
                                 CommPrimitive primitive, int gpus) const;

  // Figure 16 (right): multiplies every parameter matrix's column count by
  // `model_scale` (dummy parameters add communication but no computation,
  // like the paper's dummy models) and returns the resulting estimate.
  StatusOr<PerfEstimate> EstimateScaledModel(const CodecSpec& spec,
                                             CommPrimitive primitive,
                                             int gpus,
                                             double model_scale) const;

  // Model-size-to-computation ratio (MB / GFLOPs), the x-axis of
  // Figure 16 (right).
  double ModelSizeToComputeRatio(double model_scale = 1.0) const;

 private:
  StatusOr<PerfEstimate> EstimateInternal(const CodecSpec& spec,
                                          CommPrimitive primitive, int gpus,
                                          double model_scale) const;

  NetworkStats network_;
  MachineSpec machine_;
  CommCostModel cost_model_;
};

// Convenience: estimate for a network name on a machine.
StatusOr<PerfEstimate> EstimateConfiguration(const std::string& network,
                                             const MachineSpec& machine,
                                             const CodecSpec& spec,
                                             CommPrimitive primitive,
                                             int gpus);

}  // namespace lpsgd

#endif  // LPSGD_SIM_PERF_MODEL_H_
