// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "sim/perf_model.h"

#include <cmath>

#include "base/logging.h"
#include "base/strings.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace lpsgd {
namespace {

// Counts the estimate and records a "perf_estimate" run-report entry so
// bench binaries emit their per-configuration splits via --metrics_out.
void RecordEstimate(const PerfEstimate& est) {
  if (obs::MetricsEnabled()) {
    obs::Count("sim/perf_estimates");
  }
  if (obs::ReportEnabled()) {
    obs::RecordEntry("perf_estimate", PerfEstimateToJson(est));
  }
}

}  // namespace

obs::JsonValue PerfEstimateToJson(const PerfEstimate& estimate) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("network", estimate.network);
  v.Set("codec", estimate.codec_label);
  v.Set("primitive", CommPrimitiveName(estimate.primitive));
  v.Set("gpus", estimate.gpus);
  v.Set("global_batch", estimate.global_batch);
  v.Set("per_gpu_batch", estimate.per_gpu_batch);
  v.Set("compute_seconds", estimate.compute_seconds);
  v.Set("encode_seconds", estimate.encode_seconds);
  v.Set("comm_seconds", estimate.comm_seconds);
  v.Set("iteration_seconds", estimate.IterationSeconds());
  v.Set("wire_bytes", estimate.wire_bytes);
  v.Set("raw_bytes", estimate.raw_bytes);
  v.Set("samples_per_second", estimate.SamplesPerSecond());
  v.Set("comm_fraction", estimate.CommFraction());
  return v;
}

PerfModel::PerfModel(NetworkStats network, MachineSpec machine)
    : network_(std::move(network)),
      machine_(std::move(machine)),
      cost_model_(machine_) {}

StatusOr<PerfEstimate> PerfModel::Estimate(const CodecSpec& spec,
                                           CommPrimitive primitive,
                                           int gpus) const {
  return EstimateInternal(spec, primitive, gpus, /*model_scale=*/1.0);
}

StatusOr<PerfEstimate> PerfModel::EstimateScaledModel(
    const CodecSpec& spec, CommPrimitive primitive, int gpus,
    double model_scale) const {
  return EstimateInternal(spec, primitive, gpus, model_scale);
}

StatusOr<PerfEstimate> PerfModel::EstimateInternal(
    const CodecSpec& spec, CommPrimitive primitive, int gpus,
    double model_scale) const {
  if (gpus < 1 || gpus > machine_.num_gpus) {
    return InvalidArgumentError(
        StrCat(machine_.name, " cannot run ", gpus, " GPUs"));
  }
  if (primitive == CommPrimitive::kNccl &&
      !machine_.NcclAvailableFor(gpus)) {
    return FailedPreconditionError(
        StrCat("NCCL supports at most ", machine_.nccl_max_gpus, " GPUs"));
  }
  if (network_.batch_for_gpus.find(gpus) == network_.batch_for_gpus.end()) {
    return InvalidArgumentError(
        StrCat(network_.name, " has no batch size for ", gpus, " GPUs"));
  }
  if (model_scale < 1.0) {
    return InvalidArgumentError("model_scale must be >= 1");
  }

  PerfEstimate est;
  est.network = network_.name;
  est.codec_label = spec.Label();
  est.primitive = primitive;
  est.gpus = gpus;
  est.global_batch = network_.BatchForGpus(gpus);
  est.per_gpu_batch = est.global_batch / gpus;
  CHECK_GT(est.per_gpu_batch, 0);

  // --- Computation: calibrated single-GPU throughput, scaled by GPU
  // architecture and batch efficiency. Dummy parameters (model_scale > 1)
  // add no compute, matching the paper's extrapolation methodology.
  const double per_gpu_sps = network_.k80_samples_per_sec *
                             machine_.gpu.relative_speed *
                             network_.EfficiencyAt(est.per_gpu_batch);
  est.compute_seconds = est.per_gpu_batch / per_gpu_sps;

  if (gpus == 1) {
    // No gradient exchange; CNTK also skips quantization entirely.
    est.raw_bytes = static_cast<int64_t>(
        network_.ModelBytes() * model_scale);
    est.wire_bytes = 0;
    RecordEstimate(est);
    return est;
  }

  // --- Communication: expand the matrix inventory, apply the small-matrix
  // bypass policy, and size each matrix with the codec.
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> codec,
                         CreateCodec(spec));
  const bool identity_codec = spec.kind == CodecKind::kFullPrecision;

  std::vector<Shape> shapes;
  std::vector<ParamKind> kinds;
  for (const MatrixStat& m : network_.matrices) {
    const int64_t cols = static_cast<int64_t>(
        std::llround(static_cast<double>(m.cols) * model_scale));
    for (int c = 0; c < m.count; ++c) {
      shapes.push_back(Shape({m.rows, cols}));
      kinds.push_back(m.kind);
    }
  }
  QuantizationPolicyOptions policy;
  policy.always_bypass_biases = false;  // inventory has no bias entries
  const std::vector<bool> quantize =
      identity_codec ? std::vector<bool>(shapes.size(), false)
                     : ChooseQuantizedMatrices(shapes, kinds, policy);

  int64_t wire_bytes = 0;
  int64_t raw_bytes = 0;
  int64_t quantized_elements = 0;
  int64_t chunks = 0;
  int64_t matrices = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    const int64_t n = shapes[i].element_count();
    raw_bytes += n * static_cast<int64_t>(sizeof(float));
    ++matrices;
    if (quantize[i]) {
      wire_bytes += codec->EncodedSizeBytes(shapes[i]);
      quantized_elements += n;
      chunks += codec->NumChunks(shapes[i]);
    } else {
      wire_bytes += n * static_cast<int64_t>(sizeof(float));
    }
  }
  est.raw_bytes = raw_bytes;
  est.wire_bytes = wire_bytes;

  if (primitive == CommPrimitive::kMpi) {
    // Per-matrix reduce + broadcast messages; three kernel passes per
    // quantized matrix (local encode, owner decode share, final decode) —
    // matching comm/MpiReduceBcastAggregator.
    est.comm_seconds =
        cost_model_.MpiExchangeSeconds(wire_bytes, 2 * matrices, gpus);
    est.encode_seconds =
        3.0 * cost_model_.QuantKernelSeconds(quantized_elements, chunks);
  } else {
    est.comm_seconds =
        cost_model_.NcclAllReduceSeconds(wire_bytes, matrices, gpus);
    est.encode_seconds =
        2.0 * cost_model_.QuantKernelSeconds(quantized_elements, chunks);
  }
  RecordEstimate(est);
  return est;
}

StatusOr<double> PerfModel::Scalability(const CodecSpec& spec,
                                        CommPrimitive primitive,
                                        int gpus) const {
  LPSGD_ASSIGN_OR_RETURN(PerfEstimate est, Estimate(spec, primitive, gpus));
  // The 1-GPU full-precision baseline is machine-local (same GPU model).
  LPSGD_ASSIGN_OR_RETURN(PerfEstimate base,
                         Estimate(FullPrecisionSpec(), primitive, 1));
  return est.SamplesPerSecond() / base.SamplesPerSecond();
}

StatusOr<double> PerfModel::RecipeCostUsd(const CodecSpec& spec,
                                          CommPrimitive primitive,
                                          int gpus) const {
  LPSGD_ASSIGN_OR_RETURN(PerfEstimate est, Estimate(spec, primitive, gpus));
  const double epoch_hours =
      est.EpochSeconds(network_.dataset_samples) / 3600.0;
  return epoch_hours * network_.recipe_epochs * machine_.price_per_hour_usd;
}

double PerfModel::ModelSizeToComputeRatio(double model_scale) const {
  const double megabytes = network_.ModelBytes() * model_scale / 1e6;
  return megabytes / network_.gflops_per_sample;
}

StatusOr<PerfEstimate> EstimateConfiguration(const std::string& network,
                                             const MachineSpec& machine,
                                             const CodecSpec& spec,
                                             CommPrimitive primitive,
                                             int gpus) {
  LPSGD_ASSIGN_OR_RETURN(NetworkStats stats, FindNetworkStats(network));
  PerfModel model(std::move(stats), machine);
  return model.Estimate(spec, primitive, gpus);
}

}  // namespace lpsgd
