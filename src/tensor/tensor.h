// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_TENSOR_TENSOR_H_
#define LPSGD_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tensor/shape.h"

namespace lpsgd {

// Dense fp32 tensor with row-major storage. This is the single numeric
// container used by the NN substrate and the gradient codecs. Copyable
// (copies are deep) and movable.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const Shape& shape() const { return shape_; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  int64_t rows() const { return shape_.rows(); }
  int64_t cols() const { return shape_.cols(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // 2-D accessors through the CNTK matrix view (row-major storage:
  // element (r, c) is data()[r * cols() + c]).
  float& at(int64_t r, int64_t c) { return data_[r * cols() + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * cols() + c]; }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Fills with N(0, stddev^2) samples.
  void FillGaussian(Rng* rng, float stddev);

  // Fills with U(-limit, limit) samples.
  void FillUniform(Rng* rng, float limit);

  // Reinterprets the buffer with a new shape of identical element count.
  void Reshape(Shape shape);

  // Sum of squares and norms over all elements.
  double SumSquares() const;
  double L2Norm() const;
  double AbsMax() const;

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace lpsgd

#endif  // LPSGD_TENSOR_TENSOR_H_
