// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.element_count()), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.element_count()), fill) {}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::FillGaussian(Rng* rng, float stddev) {
  for (float& x : data_) {
    x = static_cast<float>(rng->NextGaussian()) * stddev;
  }
}

void Tensor::FillUniform(Rng* rng, float limit) {
  for (float& x : data_) {
    x = (2.0f * rng->NextFloat() - 1.0f) * limit;
  }
}

void Tensor::Reshape(Shape shape) {
  CHECK_EQ(shape.element_count(), shape_.element_count())
      << "Reshape " << shape_.ToString() << " -> " << shape.ToString();
  shape_ = std::move(shape);
}

double Tensor::SumSquares() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

double Tensor::L2Norm() const { return std::sqrt(SumSquares()); }

double Tensor::AbsMax() const {
  double max_abs = 0.0;
  for (float x : data_) max_abs = std::max(max_abs, std::abs(double{x}));
  return max_abs;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::string out = StrCat("Tensor", shape_.ToString(), " {");
  const int64_t n = std::min<int64_t>(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(data_[static_cast<size_t>(i)], 4);
  }
  if (n < size()) out += ", ...";
  out += "}";
  return out;
}

}  // namespace lpsgd
