// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_TENSOR_OPS_H_
#define LPSGD_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace lpsgd {

// Dense linear algebra over the 2-D (rows x cols) view of tensors. All
// routines are single-threaded; a simulated GPU rank executes them
// sequentially and virtual time is charged separately by the cost model.

// C = alpha * op(A) * op(B) + beta * C, where op(X) = X or X^T.
// Shapes (after op): A is m x k, B is k x n, C must be m x n.
void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c);

// y += alpha * x (element count must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// x *= alpha.
void Scale(float alpha, Tensor* x);

// Adds `bias` (length = cols of `x`) to every row of `x`.
void AddRowBroadcast(const Tensor& bias, Tensor* x);

// bias_grad[c] = sum over rows of grad(r, c). Overwrites `bias_grad`.
void SumRowsTo(const Tensor& grad, Tensor* bias_grad);

// Row-wise softmax: probs(r, :) = softmax(logits(r, :)). In-place allowed.
void SoftmaxRows(const Tensor& logits, Tensor* probs);

// im2col for 2-D convolution with square stride/padding semantics.
// Input `image` has shape {channels, height, width} (single sample).
// Output `patches` must have shape
//   {out_h * out_w, channels * kernel_h * kernel_w}.
// Padding uses zeros.
void Im2Col(const Tensor& image, int kernel_h, int kernel_w, int stride,
            int padding, Tensor* patches);

// Transpose of Im2Col: scatters patch gradients back onto the image
// gradient (accumulating). `image_grad` must be pre-shaped {C, H, W};
// contents are accumulated into, not overwritten.
void Col2Im(const Tensor& patches, int kernel_h, int kernel_w, int stride,
            int padding, Tensor* image_grad);

// Output spatial size for a convolution/pooling dimension.
inline int ConvOutputSize(int input, int kernel, int stride, int padding) {
  return (input + 2 * padding - kernel) / stride + 1;
}

// Returns the index of the maximum element of row `r` of `x`.
int64_t ArgMaxRow(const Tensor& x, int64_t r);

}  // namespace lpsgd

#endif  // LPSGD_TENSOR_OPS_H_
