// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_TENSOR_SHAPE_H_
#define LPSGD_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace lpsgd {

// Dense tensor shape. Follows CNTK's convention for quantization purposes:
// the first dimension is the "row" dimension and all remaining dimensions
// are flattened onto "columns" (Section 3.2.1 of the paper).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int ndim() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  // Total number of elements; 1 for a scalar (rank-0) shape.
  int64_t element_count() const;

  // CNTK matrix view: first dimension.
  int64_t rows() const { return ndim() == 0 ? 1 : dim(0); }
  // CNTK matrix view: product of remaining dimensions.
  int64_t cols() const;

  // "[2 x 3 x 4]".
  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace lpsgd

#endif  // LPSGD_TENSOR_SHAPE_H_
