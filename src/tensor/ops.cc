// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace lpsgd {

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  const int64_t m = transpose_a ? a.cols() : a.rows();
  const int64_t k = transpose_a ? a.rows() : a.cols();
  const int64_t k2 = transpose_b ? b.cols() : b.rows();
  const int64_t n = transpose_b ? b.rows() : b.cols();
  CHECK_EQ(k, k2) << "Gemm inner dimensions";
  CHECK_EQ(c->rows(), m);
  CHECK_EQ(c->cols(), n);

  float* cd = c->data();
  if (beta == 0.0f) {
    std::fill(cd, cd + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) cd[i] *= beta;
  }

  const float* ad = a.data();
  const float* bd = b.data();
  const int64_t lda = a.cols();
  const int64_t ldb = b.cols();

  // i-k-j ordering keeps the inner loop streaming over contiguous rows of B
  // (or C), the cache-friendly pattern for row-major storage.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik =
          alpha * (transpose_a ? ad[kk * lda + i] : ad[i * lda + kk]);
      if (aik == 0.0f) continue;
      float* crow = cd + i * n;
      if (!transpose_b) {
        const float* brow = bd + kk * ldb;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      } else {
        const float* bcol = bd + kk;  // stride ldb
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * bcol[j * ldb];
      }
    }
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  CHECK_EQ(x.size(), y->size());
  const float* xd = x.data();
  float* yd = y->data();
  for (int64_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

void Scale(float alpha, Tensor* x) {
  float* xd = x->data();
  for (int64_t i = 0; i < x->size(); ++i) xd[i] *= alpha;
}

void AddRowBroadcast(const Tensor& bias, Tensor* x) {
  CHECK_EQ(bias.size(), x->cols());
  const float* bd = bias.data();
  float* xd = x->data();
  const int64_t cols = x->cols();
  for (int64_t r = 0; r < x->rows(); ++r) {
    float* row = xd + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += bd[c];
  }
}

void SumRowsTo(const Tensor& grad, Tensor* bias_grad) {
  CHECK_EQ(bias_grad->size(), grad.cols());
  bias_grad->SetZero();
  const float* gd = grad.data();
  float* bd = bias_grad->data();
  const int64_t cols = grad.cols();
  for (int64_t r = 0; r < grad.rows(); ++r) {
    const float* row = gd + r * cols;
    for (int64_t c = 0; c < cols; ++c) bd[c] += row[c];
  }
}

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  CHECK_EQ(logits.rows(), probs->rows());
  CHECK_EQ(logits.cols(), probs->cols());
  const int64_t cols = logits.cols();
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.data() + r * cols;
    float* out = probs->data() + r * cols;
    float max_logit = in[0];
    for (int64_t c = 1; c < cols; ++c) max_logit = std::max(max_logit, in[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_logit);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void Im2Col(const Tensor& image, int kernel_h, int kernel_w, int stride,
            int padding, Tensor* patches) {
  CHECK_EQ(image.shape().ndim(), 3);
  const int channels = static_cast<int>(image.shape().dim(0));
  const int height = static_cast<int>(image.shape().dim(1));
  const int width = static_cast<int>(image.shape().dim(2));
  const int out_h = ConvOutputSize(height, kernel_h, stride, padding);
  const int out_w = ConvOutputSize(width, kernel_w, stride, padding);
  CHECK_EQ(patches->rows(), int64_t{out_h} * out_w);
  CHECK_EQ(patches->cols(), int64_t{channels} * kernel_h * kernel_w);

  const float* img = image.data();
  float* out = patches->data();
  const int64_t patch_width = patches->cols();
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      float* row = out + (int64_t{oy} * out_w + ox) * patch_width;
      int64_t idx = 0;
      for (int ch = 0; ch < channels; ++ch) {
        const float* plane = img + int64_t{ch} * height * width;
        for (int ky = 0; ky < kernel_h; ++ky) {
          const int iy = oy * stride + ky - padding;
          for (int kx = 0; kx < kernel_w; ++kx, ++idx) {
            const int ix = ox * stride + kx - padding;
            row[idx] = (iy >= 0 && iy < height && ix >= 0 && ix < width)
                           ? plane[int64_t{iy} * width + ix]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const Tensor& patches, int kernel_h, int kernel_w, int stride,
            int padding, Tensor* image_grad) {
  CHECK_EQ(image_grad->shape().ndim(), 3);
  const int channels = static_cast<int>(image_grad->shape().dim(0));
  const int height = static_cast<int>(image_grad->shape().dim(1));
  const int width = static_cast<int>(image_grad->shape().dim(2));
  const int out_h = ConvOutputSize(height, kernel_h, stride, padding);
  const int out_w = ConvOutputSize(width, kernel_w, stride, padding);
  CHECK_EQ(patches.rows(), int64_t{out_h} * out_w);
  CHECK_EQ(patches.cols(), int64_t{channels} * kernel_h * kernel_w);

  const float* in = patches.data();
  float* img = image_grad->data();
  const int64_t patch_width = patches.cols();
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const float* row = in + (int64_t{oy} * out_w + ox) * patch_width;
      int64_t idx = 0;
      for (int ch = 0; ch < channels; ++ch) {
        float* plane = img + int64_t{ch} * height * width;
        for (int ky = 0; ky < kernel_h; ++ky) {
          const int iy = oy * stride + ky - padding;
          for (int kx = 0; kx < kernel_w; ++kx, ++idx) {
            const int ix = ox * stride + kx - padding;
            if (iy >= 0 && iy < height && ix >= 0 && ix < width) {
              plane[int64_t{iy} * width + ix] += row[idx];
            }
          }
        }
      }
    }
  }
}

int64_t ArgMaxRow(const Tensor& x, int64_t r) {
  const int64_t cols = x.cols();
  const float* row = x.data() + r * cols;
  int64_t best = 0;
  for (int64_t c = 1; c < cols; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

}  // namespace lpsgd
