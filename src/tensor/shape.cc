// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/shape.h"

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) CHECK_GE(d, 0);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) CHECK_GE(d, 0);
}

int64_t Shape::dim(int i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, ndim());
  return dims_[i];
}

int64_t Shape::element_count() const {
  int64_t count = 1;
  for (int64_t d : dims_) count *= d;
  return count;
}

int64_t Shape::cols() const {
  if (ndim() <= 1) return 1;
  int64_t count = 1;
  for (int i = 1; i < ndim(); ++i) count *= dims_[i];
  return count;
}

std::string Shape::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (int64_t d : dims_) parts.push_back(StrCat(d));
  return StrCat("[", StrJoin(parts, " x "), "]");
}

}  // namespace lpsgd
