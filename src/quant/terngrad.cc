// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/terngrad.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

constexpr int kFieldBits = 2;  // 1 sign bit + 1 magnitude bit

}  // namespace

TernGradCodec::TernGradCodec(int64_t bucket_size, double clip, uint64_t seed)
    : bucket_size_(bucket_size > 0 ? bucket_size : 0),
      clip_(clip > 0.0 ? clip : 0.0),
      seed_(seed) {}

std::string TernGradCodec::Name() const {
  std::string name =
      bucket_size_ > 0 ? StrCat("TernGrad (b=", bucket_size_, ")")
                       : std::string("TernGrad");
  if (clip_ > 0.0) {
    name = StrCat(name, " clip=", FormatDouble(clip_, 1));
  }
  return name;
}

int64_t TernGradCodec::ChunkLength(int64_t n) const {
  return bucket_size_ > 0 ? bucket_size_ : n;
}

int64_t TernGradCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const int64_t len = ChunkLength(n);
  return (n + len - 1) / len;
}

int64_t TernGradCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const BitPacker packer(kFieldBits);
  return NumChunks(shape) * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

LPSGD_HOT_PATH
void TernGradCodec::Encode(const float* grad, const Shape& shape,
                           uint64_t stochastic_tag,
                           std::vector<float>* /*error*/,
                           CodecWorkspace* workspace,
                           std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("terngrad", /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  const int64_t chunks = NumChunks(shape);
  const int64_t len = ChunkLength(n);
  const CounterRng stream(seed_, stochastic_tag);

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);
  BitWriter writer(
      MutableWordsAt(blob, chunks * static_cast<int64_t>(sizeof(float))),
      kFieldBits);

  // The ternarize draw — P(|q| = scale) = min(|g|, threshold) / scale,
  // unbiased over the clipped gradient — runs through the runtime-
  // dispatched kernel table.
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  const ElementwiseKernels& elementwise = ActiveElementwiseKernels();
  quant_simd::QuantizeArgs args;
  args.values = grad;
  args.stream_seed = stream.stream_seed();
  args.bits = kFieldBits;
  args.writer = &writer;
  for (int64_t b = 0; b < chunks; ++b) {
    const int64_t begin = b * len;
    const int64_t end = std::min(begin + len, n);

    double max_abs = 0.0;
    double threshold = std::numeric_limits<double>::infinity();
    if (clip_ > 0.0) {
      // One pass gathers both the max magnitude (the scalar) and the sum
      // of squares (for the clipping threshold clip * RMS). The fused sum
      // is order-sensitive, so this path stays scalar in every dispatch
      // mode.
      double sum_sq = 0.0;
      for (int64_t i = begin; i < end; ++i) {
        const double g = grad[i];
        max_abs = std::max(max_abs, std::abs(g));
        sum_sq += g * g;
      }
      threshold =
          clip_ * std::sqrt(sum_sq / static_cast<double>(end - begin));
    } else {
      max_abs = elementwise.max_abs_f32(grad + begin, end - begin);
    }
    const double scale = std::min(max_abs, threshold);
    scales[b] = static_cast<float>(scale);
    if (scale == 0.0) {
      // Zero fields decode to exact zeros; keep the stream position.
      for (int64_t i = begin; i < end; ++i) writer.Put(0u);
      continue;
    }

    args.begin = begin;
    args.end = end;
    args.scale = scale;
    args.threshold = threshold;
    kernels.terngrad_quantize(args);
  }
  writer.Finish();
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status TernGradCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                             const Shape& shape, CodecWorkspace* workspace,
                             float* out) const {
  codec_internal::CodecObsScope obs_scope("terngrad", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "terngrad", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t chunks = NumChunks(shape);
  const int64_t len = ChunkLength(n);
  const float* scales = FloatsAt(bytes, 0);
  BitReader reader(
      WordsAt(bytes, chunks * static_cast<int64_t>(sizeof(float))),
      kFieldBits);

  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  quant_simd::DequantizeArgs args;
  args.reader = &reader;
  args.bits = kFieldBits;
  args.out = out;
  for (int64_t b = 0; b < chunks; ++b) {
    args.begin = b * len;
    args.end = std::min(args.begin + len, n);
    args.scale = scales[b];
    kernels.terngrad_dequantize(args);
  }
  return OkStatus();
}

CodecSpec TernGradSpec(int64_t bucket_size, double clip) {
  CodecSpec spec;
  spec.kind = CodecKind::kTernGrad;
  spec.bits = 2;
  spec.bucket_size = bucket_size;
  spec.clip = clip;
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkTernGradCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily TernGradFamily() {
  CodecFamily family;
  family.kind = CodecKind::kTernGrad;
  family.name = "terngrad";
  family.help = "ternary {-s,0,+s} with per-matrix scalar (alias: tern); "
                "optional bucket= and clip= (multiple of chunk RMS)";
  family.keys = {"bucket", "clip"};
  family.matches = [](const std::string& head) {
    return head == "terngrad" || head == "tern";
  };
  family.parse = [](const std::string& /*head*/,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    CodecSpec spec = TernGradSpec();
    LPSGD_RETURN_IF_ERROR(TakeBucketParam(params, &spec));
    if (const std::string* clip = params->Take("clip")) {
      LPSGD_ASSIGN_OR_RETURN(spec.clip,
                             ParseDoubleParam(*clip, "TernGrad clip"));
      if (spec.clip <= 0.0) {
        return InvalidArgumentError(StrCat("bad TernGrad clip: ", *clip));
      }
    }
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bucket_size < 0) {
      return InvalidArgumentError(StrCat(
          "TernGrad bucket size must be >= 0, got ", spec.bucket_size));
    }
    if (spec.clip < 0.0) {
      return InvalidArgumentError(
          StrCat("TernGrad clip must be >= 0, got ", spec.clip));
    }
    return std::unique_ptr<GradientCodec>(
        new TernGradCodec(spec.bucket_size, spec.clip, spec.seed));
  };
  family.label = [](const CodecSpec& spec) {
    std::string label = spec.bucket_size > 0
                            ? StrCat("TernGrad (b=", spec.bucket_size, ")")
                            : std::string("TernGrad");
    if (spec.clip > 0.0) {
      label = StrCat(label, " clip=", FormatDouble(spec.clip, 1));
    }
    return label;
  };
  family.short_label = [](const CodecSpec& /*spec*/) {
    return std::string("T");
  };
  return family;
}

const CodecRegistrar registrar(TernGradFamily());

}  // namespace
}  // namespace lpsgd
