// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// AVX2 kernel for the NUQSGD exponential-grid quantize hot loop. The level
// index j = clamp(frexp_exponent(a) - 1 + s, 0, s - 1) is recovered from
// the raw biased exponent of the double: for normal a, frexp's exponent
// minus one equals biased - 1023, and for subnormal or zero a the biased
// exponent 0 clamps to j = 0 exactly like the scalar path (at j = 0 the
// interpolation p is <= 0, so u < p never fires and level stays 0,
// matching the scalar a > 0 guard).
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {
namespace {

#include "quant/simd_avx2_common.inc"

constexpr int64_t kTileWords = 64;

}  // namespace

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void NuqQuantize(const QuantizeArgs& args) {
  BitWriter* writer = args.writer;
  const int s_int = static_cast<int>(args.level_count);
  int64_t i = args.begin;
  while (i < args.end && !writer->AtWordBoundary()) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(NuqField(args.values[i], args.scale, args.magnitudes, s_int,
                         args.bits, u));
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    uint32_t* out_words = writer->cursor();
    writer->SkipWords(words_left);
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d scale_v = _mm256_set1_pd(args.scale);
    const __m128i zero32 = _mm_setzero_si128();
    const __m128i one32 = _mm_set1_epi32(1);
    const __m128i exp_bias = _mm_set1_epi32(s_int - 1023);
    const __m128i j_max = _mm_set1_epi32(s_int - 1);
    const __m128i sign_bit = _mm_set1_epi32(1 << (args.bits - 1));
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m256d u = Uniform4At(args.stream_seed, i + t);
        const __m256d dg = _mm256_cvtps_pd(_mm_loadu_ps(args.values + i + t));
        __m256d a = _mm256_div_pd(_mm256_and_pd(dg, abs_mask), scale_v);
        a = _mm256_blendv_pd(one, a, _mm256_cmp_pd(a, one, _CMP_LT_OQ));
        const __m128i biased = Low32Of64(_mm256_and_si256(
            _mm256_srli_epi64(_mm256_castpd_si256(a), 52),
            _mm256_set1_epi64x(0x7ff)));
        __m128i j = _mm_add_epi32(biased, exp_bias);
        j = _mm_max_epi32(j, zero32);
        j = _mm_min_epi32(j, j_max);
        const __m256d lo = _mm256_i32gather_pd(args.magnitudes, j, 8);
        const __m256d hi = _mm256_i32gather_pd(args.magnitudes,
                                               _mm_add_epi32(j, one32), 8);
        const __m256d p =
            _mm256_div_pd(_mm256_sub_pd(a, lo), _mm256_sub_pd(hi, lo));
        const __m128i bump = Low32Of64(
            _mm256_castpd_si256(_mm256_cmp_pd(u, p, _CMP_LT_OQ)));
        const __m128i level = _mm_sub_epi32(j, bump);  // bump is 0 or -1
        const __m128i sign32 = Low32Of64(
            _mm256_castpd_si256(_mm256_cmp_pd(dg, zero, _CMP_LT_OQ)));
        const __m128i field =
            _mm_or_si128(level, _mm_and_si128(sign32, sign_bit));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(fields + t), field);
      }
      for (; t < count; ++t) {
        const double u =
            StreamUniform(args.stream_seed, static_cast<uint64_t>(i + t));
        fields[t] = NuqField(args.values[i + t], args.scale, args.magnitudes,
                             s_int, args.bits, u);
      }
      PackFieldWords(fields, tile_words, per_word, args.bits, out_words);
      out_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(NuqField(args.values[i], args.scale, args.magnitudes, s_int,
                         args.bits, u));
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)
