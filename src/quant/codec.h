// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_CODEC_H_
#define LPSGD_QUANT_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "obs/metrics.h"
#include "tensor/shape.h"

namespace lpsgd {

struct CodecWorkspace;  // quant/workspace.h

// A gradient compression codec: the Encode/Decode pair of Algorithm 1.
//
// Encode consumes one gradient matrix (flat fp32 buffer interpreted through
// its CNTK quantization shape, Section 3.2.1) and produces a wire blob;
// Decode reconstructs an approximate gradient. Codecs are stateless —
// error-feedback residuals (1bitSGD) are owned by the caller, one per
// (rank, matrix), and passed in; stochastic codecs (QSGD) derive their
// randomness from the caller-provided `stochastic_tag` so runs are exactly
// reproducible.
class GradientCodec {
 public:
  virtual ~GradientCodec() = default;

  // Short display label, e.g. "QSGD 4bit" or "1bitSGD*".
  virtual std::string Name() const = 0;

  // Exact wire size in bytes of an encoded gradient with shape `shape`.
  virtual int64_t EncodedSizeBytes(const Shape& shape) const = 0;

  // Number of independently-scaled chunks (columns or buckets) the codec
  // produces for `shape`; drives the GPU kernel-launch cost model. Zero for
  // the identity codec.
  virtual int64_t NumChunks(const Shape& shape) const = 0;

  // True when the codec maintains an error-feedback residual; the caller
  // must then pass a persistent, zero-initialized `error` buffer of
  // shape.element_count() floats to every Encode call.
  virtual bool UsesErrorFeedback() const { return false; }

  // Encodes `grad` (shape.element_count() floats). `error` may be null for
  // codecs without error feedback. `workspace` provides reusable scratch
  // and must not be null or shared across concurrent calls; `out` is
  // overwritten (its capacity is reused). Output bytes are a pure function
  // of (grad, shape, stochastic_tag, error) — never of the workspace's
  // prior contents. The last codec_internal::kWireChecksumBytes of the
  // blob are the FNV-1a-32 hash of everything before them (the trailing
  // integrity word Decode verifies).
  virtual void Encode(const float* grad, const Shape& shape,
                      uint64_t stochastic_tag, std::vector<float>* error,
                      CodecWorkspace* workspace,
                      std::vector<uint8_t>* out) const = 0;

  // Decodes `bytes` into `out` (shape.element_count() floats, overwritten).
  // Same workspace contract as Encode. Returns a DataLoss Status — and
  // leaves `out` untouched — when the blob is mis-sized (truncated,
  // zero-length, padded) or its trailing integrity word does not match the
  // payload: a corrupted exchange surfaces as an error instead of decoding
  // into garbage gradients.
  virtual Status Decode(const uint8_t* bytes, int64_t num_bytes,
                        const Shape& shape, CodecWorkspace* workspace,
                        float* out) const = 0;

  // Sparse wire support. A sparse codec (TopK) transmits (index, value)
  // pairs; SparseCount returns how many pairs a blob for `shape` carries —
  // exactly, as a pure function of the shape — and 0 for dense codecs.
  virtual int64_t SparseCount(const Shape& /*shape*/) const { return 0; }

  // Decodes a sparse blob into caller-provided arrays of
  // SparseCount(shape) entries each: strictly-increasing element indices
  // and their values. Lets the aggregators scatter-add K blobs without
  // materializing K dense buffers. Same integrity contract as Decode
  // (DataLoss on a mis-sized or tampered blob, outputs untouched). The
  // default fails: dense codecs have no sparse representation.
  virtual Status DecodeSparse(const uint8_t* bytes, int64_t num_bytes,
                              const Shape& shape, CodecWorkspace* workspace,
                              uint32_t* indices, float* values) const;

  // Convenience overloads for call sites without a persistent workspace
  // (tests, one-shot tools): allocate a fresh local workspace per call.
  // Byte-identical to the workspace overloads.
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, std::vector<uint8_t>* out) const;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                float* out) const;
};

enum class CodecKind {
  kFullPrecision,
  kOneBitSgd,          // CNTK stock per-column variant
  kOneBitSgdReshaped,  // 1bitSGD* (bucketed)
  kQsgd,
  kQsgdAdaptive,       // ZipML-style data-adaptive levels (Section 2.3)
  kTopK,               // sparsification (Aji & Heafield; Section 7)
  kTernGrad,           // ternary with layer-wise scalar (Wen et al.)
  kNuqsgd,             // nonuniform exponential levels (Ramezani-Kebrya)
  kEcqSgd,             // error-compensated QSGD
};

// QSGD scaling-factor choice (Section 3.2.2): 2-norm yields sparser
// quantized vectors; the max (infinity) norm introduces less variance and
// gave the paper better accuracy.
enum class QsgdNorm { kL2, kMax };

// QSGD level placement (Section 3.2.2): sign-magnitude keeps one sign bit
// plus magnitude levels in [0, 1]; symmetric spreads 2^bits - 1 levels over
// [-scale, +scale].
enum class QsgdLevelScheme { kSignMagnitude, kSymmetric };

// Full description of a communication precision configuration.
struct CodecSpec {
  CodecKind kind = CodecKind::kFullPrecision;
  int bits = 32;                // QSGD only (2, 4, 8, 16)
  int64_t bucket_size = 512;    // QSGD and 1bitSGD*
  QsgdNorm norm = QsgdNorm::kMax;
  QsgdLevelScheme levels = QsgdLevelScheme::kSignMagnitude;
  double density = 0.01;        // TopK only: fraction of components sent
  // TernGrad only: gradient clipping threshold as a multiple of the chunk's
  // standard deviation (Wen et al. Section 4); 0 disables clipping.
  double clip = 0.0;
  // Ablation switch: disable 1bitSGD's error-feedback accumulator.
  bool error_feedback = true;
  uint64_t seed = 0x95bd0b1f2c3d4e5fULL;

  // Parses a human-friendly codec description, as accepted by the CLI
  // tools, by dispatching on the registered codec families
  // (quant/registry.h). Grammar (case-insensitive):
  //   "32bit" | "fp32"                      full precision
  //   "1bit"  | "1bitsgd"                   stock per-column 1bitSGD
  //   "1bit*" | "1bitsgd*"                  reshaped, default bucket 64
  //   "1bit*:<bucket>"                      reshaped with explicit bucket
  //   "q<bits>"                             QSGD with the paper bucket size
  //   "q<bits>:<bucket>"                    QSGD with explicit bucket
  //   "topk:<density>"                      TopK, density in (0, 1]
  //   "aq<bits>[:<bucket>]"                 adaptive-levels QSGD
  //   "nuq<bits>[:<bucket>]"                nonuniform-levels QSGD
  //   "ecq<bits>[:<bucket>]"                error-compensated QSGD
  //   "terngrad" | "tern"                   ternary, per-matrix scalar
  // Every family also accepts comma-separated key=value parameters after
  // the ':' in place of the positional value, e.g. "q4:bucket=512,norm=l2"
  // or "terngrad:bucket=1024,clip=2.5"; unknown codecs and malformed
  // parameters are rejected with the offending token named and the
  // registered names/keys listed.
  [[nodiscard]] static StatusOr<CodecSpec> Parse(const std::string& text);

  // Instantiates the codec this spec describes via the family registry;
  // fails on out-of-range parameters (bits, bucket size, density).
  [[nodiscard]] StatusOr<std::unique_ptr<GradientCodec>> Create() const;

  // "32bit", "QSGD 4bit (b=512)", "1bitSGD", "1bitSGD* (b=64)", ...
  std::string Label() const;
  // Compact label used in the paper's tables: "32bit", "Q4", "1b", "1b*".
  std::string ShortLabel() const;
};

// The precision configurations of the paper's performance figures, with
// the accuracy-preserving bucket sizes from Section 4.4: QSGD 2bit/128,
// 4bit/512, 8bit/512, 16bit/8192, 1bitSGD* /64.
CodecSpec FullPrecisionSpec();
CodecSpec QsgdSpec(int bits);             // paper bucket size for `bits`
CodecSpec OneBitSgdSpec();                // stock CNTK variant
CodecSpec OneBitSgdReshapedSpec(int64_t bucket_size = 64);
CodecSpec TopKSpec(double density);       // sparse communication
CodecSpec AdaptiveQsgdSpec(int bits);     // quantile-placed levels
// bucket_size 0 = one scalar per matrix (the paper's layer-wise scaling);
// clip > 0 clamps gradients at clip * sigma before scaling.
CodecSpec TernGradSpec(int64_t bucket_size = 0, double clip = 0.0);
CodecSpec NuqsgdSpec(int bits);           // exponential levels, L2 norm
CodecSpec EcqSgdSpec(int bits);           // QSGD + error feedback

// Free-function forwarders kept for older call sites; prefer the
// CodecSpec::Create / CodecSpec::Parse members.
[[nodiscard]] StatusOr<std::unique_ptr<GradientCodec>> CreateCodec(
    const CodecSpec& spec);
[[nodiscard]] StatusOr<CodecSpec> ParseCodecSpec(const std::string& text);

namespace codec_internal {

// Instrumentation guard placed at the top of every codec Encode/Decode:
// times the call into the quant/encode_seconds or quant/decode_seconds
// histogram, bumps quant/<codec>/{encode,decode}_calls, and (for encodes)
// accumulates quant/encode_bytes from the produced blob. All of it no-ops
// behind one branch while the global metrics registry is disabled, keeping
// the codec hot path unobserved-run clean.
class CodecObsScope {
 public:
  CodecObsScope(std::string_view codec, bool encode,
                const std::vector<uint8_t>* encoded = nullptr)
      : codec_(codec),
        encode_(encode),
        encoded_(encoded),
        active_(obs::MetricsEnabled()),
        start_(active_ ? obs::MonotonicSeconds() : 0.0) {}
  CodecObsScope(const CodecObsScope&) = delete;
  CodecObsScope& operator=(const CodecObsScope&) = delete;
  ~CodecObsScope();

 private:
  std::string_view codec_;
  bool encode_;
  const std::vector<uint8_t>* encoded_;
  bool active_;
  double start_;
};

// Every encoded blob ends with a trailing integrity word: the little-endian
// FNV-1a-32 hash (base/bit_packing.h) of all payload bytes before it.
// EncodedSizeBytes already includes it.
inline constexpr int64_t kWireChecksumBytes =
    static_cast<int64_t>(sizeof(uint32_t));

// Writes the trailing integrity word over blob[payload_bytes, +4). Called
// by every Encode after the payload is complete.
void SealWireBlob(uint8_t* blob, int64_t payload_bytes);

// Validates an encoded blob's framing and integrity before decoding:
// `num_bytes` must equal `expected_bytes` (the codec's EncodedSizeBytes for
// the shape, checksum included) and the trailing word must match the
// payload hash. Violations return DataLoss and bump the
// comm/checksum_failures counter; the blob must not be decoded.
[[nodiscard]] Status VerifyWireBlob(std::string_view codec,
                                    const uint8_t* bytes, int64_t num_bytes,
                                    int64_t expected_bytes);

// Wire-format helpers shared by codec implementations.
void AppendFloats(const float* values, int64_t count,
                  std::vector<uint8_t>* out);
void AppendWords(const uint32_t* words, int64_t count,
                 std::vector<uint8_t>* out);
const float* FloatsAt(const uint8_t* bytes, int64_t offset_bytes);
const uint32_t* WordsAt(const uint8_t* bytes, int64_t offset_bytes);
float* MutableFloatsAt(uint8_t* bytes, int64_t offset_bytes);
uint32_t* MutableWordsAt(uint8_t* bytes, int64_t offset_bytes);

}  // namespace codec_internal

}  // namespace lpsgd

#endif  // LPSGD_QUANT_CODEC_H_
