// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/full_precision.h"

#include <cstring>

#include "base/logging.h"
#include "base/thread_annotations.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/workspace.h"

namespace lpsgd {

int64_t FullPrecisionCodec::EncodedSizeBytes(const Shape& shape) const {
  return shape.element_count() * static_cast<int64_t>(sizeof(float)) +
         codec_internal::kWireChecksumBytes;
}

int64_t FullPrecisionCodec::NumChunks(const Shape& /*shape*/) const {
  return 0;
}

LPSGD_HOT_PATH
void FullPrecisionCodec::Encode(const float* grad, const Shape& shape,
                                uint64_t /*stochastic_tag*/,
                                std::vector<float>* /*error*/,
                                CodecWorkspace* workspace,
                                std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("full_precision", /*encode=*/true,
                                          out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t payload =
      shape.element_count() * static_cast<int64_t>(sizeof(float));
  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  std::memcpy(blob, grad, static_cast<size_t>(payload));
  codec_internal::SealWireBlob(blob, payload);
}

LPSGD_HOT_PATH
Status FullPrecisionCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                                  const Shape& shape,
                                  CodecWorkspace* workspace,
                                  float* out) const {
  codec_internal::CodecObsScope obs_scope("full_precision",
                                          /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "full_precision", bytes, num_bytes, EncodedSizeBytes(shape)));
  std::memcpy(out, bytes, static_cast<size_t>(n) * sizeof(float));
  return OkStatus();
}

CodecSpec FullPrecisionSpec() { return CodecSpec{}; }

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkFullPrecisionCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily FullPrecisionFamily() {
  CodecFamily family;
  family.kind = CodecKind::kFullPrecision;
  family.name = "32bit";
  family.help = "full precision (alias: fp32)";
  family.matches = [](const std::string& head) {
    return head == "32bit" || head == "fp32";
  };
  family.parse = [](const std::string& /*head*/,
                    CodecParams* /*params*/) -> StatusOr<CodecSpec> {
    return FullPrecisionSpec();
  };
  family.create = [](const CodecSpec& /*spec*/)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    return std::unique_ptr<GradientCodec>(new FullPrecisionCodec());
  };
  family.label = [](const CodecSpec& /*spec*/) {
    return std::string("32bit");
  };
  family.short_label = [](const CodecSpec& /*spec*/) {
    return std::string("32bit");
  };
  return family;
}

const CodecRegistrar registrar(FullPrecisionFamily());

}  // namespace
}  // namespace lpsgd
