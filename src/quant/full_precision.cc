// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/full_precision.h"

#include <cstring>

#include "base/logging.h"
#include "base/thread_annotations.h"
#include "obs/profile.h"
#include "quant/workspace.h"

namespace lpsgd {

int64_t FullPrecisionCodec::EncodedSizeBytes(const Shape& shape) const {
  return shape.element_count() * static_cast<int64_t>(sizeof(float)) +
         codec_internal::kWireChecksumBytes;
}

int64_t FullPrecisionCodec::NumChunks(const Shape& /*shape*/) const {
  return 0;
}

LPSGD_HOT_PATH
void FullPrecisionCodec::Encode(const float* grad, const Shape& shape,
                                uint64_t /*stochastic_tag*/,
                                std::vector<float>* /*error*/,
                                CodecWorkspace* workspace,
                                std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("full_precision", /*encode=*/true,
                                          out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t payload =
      shape.element_count() * static_cast<int64_t>(sizeof(float));
  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  std::memcpy(blob, grad, static_cast<size_t>(payload));
  codec_internal::SealWireBlob(blob, payload);
}

LPSGD_HOT_PATH
Status FullPrecisionCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                                  const Shape& shape,
                                  CodecWorkspace* workspace,
                                  float* out) const {
  codec_internal::CodecObsScope obs_scope("full_precision",
                                          /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "full_precision", bytes, num_bytes, EncodedSizeBytes(shape)));
  std::memcpy(out, bytes, static_cast<size_t>(n) * sizeof(float));
  return OkStatus();
}

}  // namespace lpsgd
