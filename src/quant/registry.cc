// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/registry.h"

#include <cstdlib>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {

StatusOr<CodecParams> CodecParams::Split(const std::string& arg) {
  CodecParams params;
  if (arg.empty()) return params;
  for (const std::string& piece : StrSplit(arg, ',')) {
    if (piece.empty()) {
      return InvalidArgumentError(
          StrCat("empty codec parameter in '", arg, "'"));
    }
    const auto eq = piece.find('=');
    Token token;
    if (eq == std::string::npos) {
      if (!params.tokens_.empty()) {
        return InvalidArgumentError(StrCat(
            "positional codec parameter '", piece,
            "' must come first (after any value, use key=value form)"));
      }
      token.value = piece;
    } else {
      token.key = piece.substr(0, eq);
      token.value = piece.substr(eq + 1);
      if (token.key.empty() || token.value.empty()) {
        return InvalidArgumentError(
            StrCat("malformed codec parameter '", piece,
                   "': expected key=value"));
      }
      for (const Token& existing : params.tokens_) {
        if (existing.key == token.key) {
          return InvalidArgumentError(
              StrCat("repeated codec parameter key '", token.key, "'"));
        }
      }
    }
    params.tokens_.push_back(std::move(token));
  }
  return params;
}

std::string CodecParams::TakePositional() {
  if (!tokens_.empty() && tokens_[0].key.empty() && !tokens_[0].consumed) {
    tokens_[0].consumed = true;
    return tokens_[0].value;
  }
  return "";
}

const std::string* CodecParams::Take(const std::string& key) {
  for (Token& token : tokens_) {
    if (!token.consumed && token.key == key) {
      token.consumed = true;
      return &token.value;
    }
  }
  return nullptr;
}

Status CodecParams::Finish(
    const std::string& family,
    const std::vector<std::string>& accepted_keys) const {
  for (const Token& token : tokens_) {
    if (token.consumed) continue;
    const std::string shown =
        token.key.empty() ? token.value : StrCat(token.key, "=", token.value);
    if (accepted_keys.empty()) {
      return InvalidArgumentError(StrCat("codec '", family,
                                         "' takes no parameters, got '",
                                         shown, "'"));
    }
    return InvalidArgumentError(
        StrCat("unknown parameter '", shown, "' for codec '", family,
               "' (accepted keys: ", StrJoin(accepted_keys, ", "), ")"));
  }
  return OkStatus();
}

StatusOr<int64_t> ParseInt64Param(const std::string& value,
                                  const std::string& what) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') {
    return InvalidArgumentError(StrCat("bad ", what, ": ", value));
  }
  return static_cast<int64_t>(parsed);
}

StatusOr<double> ParseDoubleParam(const std::string& value,
                                  const std::string& what) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') {
    return InvalidArgumentError(StrCat("bad ", what, ": ", value));
  }
  return parsed;
}

StatusOr<std::string> TakeValueOrKey(CodecParams* params,
                                     const std::string& key) {
  const std::string positional = params->TakePositional();
  const std::string* keyed = params->Take(key);
  if (!positional.empty() && keyed != nullptr) {
    return InvalidArgumentError(
        StrCat("codec parameter '", key,
               "' given both positionally and as ", key, "=", *keyed));
  }
  if (keyed != nullptr) return *keyed;
  return positional;
}

bool MatchesBitsHead(const std::string& head, const std::string& prefix) {
  if (head.size() <= prefix.size() ||
      head.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  for (size_t i = prefix.size(); i < head.size(); ++i) {
    if (head[i] < '0' || head[i] > '9') return false;
  }
  return true;
}

StatusOr<int> ParseBitsHead(const std::string& head,
                            const std::string& prefix,
                            const std::string& family) {
  LPSGD_ASSIGN_OR_RETURN(
      const int64_t bits,
      ParseInt64Param(head.substr(prefix.size()), StrCat(family, " bits")));
  if (bits < 2 || bits > 16) {
    return InvalidArgumentError(StrCat("bad ", family, " bits: ", head));
  }
  return static_cast<int>(bits);
}

Status TakeBucketParam(CodecParams* params, CodecSpec* spec) {
  LPSGD_ASSIGN_OR_RETURN(const std::string bucket_text,
                         TakeValueOrKey(params, "bucket"));
  if (!bucket_text.empty()) {
    LPSGD_ASSIGN_OR_RETURN(const int64_t bucket,
                           ParseInt64Param(bucket_text, "bucket size"));
    if (bucket <= 0) {
      return InvalidArgumentError(StrCat("bad bucket size: ", bucket_text));
    }
    spec->bucket_size = bucket;
  }
  return OkStatus();
}

CodecRegistry& CodecRegistry::Global() {
  // Leaky singleton: safe to call from any static initializer (the
  // registrars) and never destroyed, so no shutdown-order hazards.
  static CodecRegistry* registry = new CodecRegistry();
  return *registry;
}

void CodecRegistry::Register(CodecFamily family) {
  CHECK(!family.name.empty());
  CHECK(family.matches != nullptr);
  CHECK(family.parse != nullptr);
  CHECK(family.create != nullptr);
  CHECK(family.label != nullptr);
  CHECK(family.short_label != nullptr);
  for (const CodecFamily& existing : families_) {
    CHECK(existing.kind != family.kind);
    CHECK(existing.name != family.name);
  }
  families_.push_back(std::move(family));
}

const CodecFamily* CodecRegistry::FindByHead(const std::string& head) const {
  for (const CodecFamily& family : families_) {
    if (family.matches(head)) return &family;
  }
  return nullptr;
}

const CodecFamily* CodecRegistry::FindByKind(CodecKind kind) const {
  for (const CodecFamily& family : families_) {
    if (family.kind == kind) return &family;
  }
  return nullptr;
}

std::vector<std::string> CodecRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const CodecFamily& family : families_) names.push_back(family.name);
  return names;
}

std::vector<std::string> CodecRegistry::HelpLines() const {
  std::vector<std::string> lines;
  lines.reserve(families_.size());
  for (const CodecFamily& family : families_) {
    lines.push_back(StrCat(family.name, "  ", family.help));
  }
  return lines;
}

CodecRegistrar::CodecRegistrar(CodecFamily family) {
  CodecRegistry::Global().Register(std::move(family));
}

namespace codec_internal {

// Force-link anchors, one per codec translation unit. After the registry
// redesign nothing in the spec layer names a codec class, so the linker
// would drop the registrar-only archive members entirely; summing the
// anchors from here (registry.cc is always pulled via CodecSpec::Parse)
// keeps every codec TU — and its static CodecRegistrar — in the binary.
int LinkFullPrecisionCodecFamily();
int LinkOneBitSgdCodecFamilies();
int LinkQsgdCodecFamily();
int LinkAdaptiveQsgdCodecFamily();
int LinkTopKCodecFamily();
int LinkTernGradCodecFamily();
int LinkNuqsgdCodecFamily();
int LinkEcqSgdCodecFamily();

const int kCodecFamilyLinkAnchor =
    LinkFullPrecisionCodecFamily() + LinkOneBitSgdCodecFamilies() +
    LinkQsgdCodecFamily() + LinkAdaptiveQsgdCodecFamily() +
    LinkTopKCodecFamily() + LinkTernGradCodecFamily() +
    LinkNuqsgdCodecFamily() + LinkEcqSgdCodecFamily();

}  // namespace codec_internal
}  // namespace lpsgd
