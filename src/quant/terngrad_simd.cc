// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// AVX2 kernels (and a NEON dequantize) for the TernGrad ternarize hot
// loops. Encode follows the clip'ed-magnitude Bernoulli draw of Equation 3;
// decode expands 2-bit fields to {-scale, -0, +0, +scale} with the sign
// applied as a bit flip so -0.0f round-trips exactly like the scalar path.
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {
namespace {

#include "quant/simd_avx2_common.inc"

constexpr int64_t kTileWords = 64;

}  // namespace

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void TernGradQuantize(const QuantizeArgs& args) {
  BitWriter* writer = args.writer;
  int64_t i = args.begin;
  while (i < args.end && !writer->AtWordBoundary()) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(TernGradField(args.values[i], args.scale, args.threshold, u));
    ++i;
  }
  const int per_word = 32 / args.bits;  // 16 fields of 2 bits
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    uint32_t* out_words = writer->cursor();
    writer->SkipWords(words_left);
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d zero = _mm256_setzero_pd();
    const __m256d scale_v = _mm256_set1_pd(args.scale);
    const __m256d threshold_v = _mm256_set1_pd(args.threshold);
    const __m128i one32 = _mm_set1_epi32(1);
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m256d u = Uniform4At(args.stream_seed, i + t);
        const __m256d dg = _mm256_cvtps_pd(_mm_loadu_ps(args.values + i + t));
        const __m256d ag = _mm256_and_pd(dg, abs_mask);
        // std::min(|g|, threshold) == (threshold < |g|) ? threshold : |g|.
        const __m256d clipped = _mm256_blendv_pd(
            ag, threshold_v, _mm256_cmp_pd(threshold_v, ag, _CMP_LT_OQ));
        const __m256d a = _mm256_div_pd(clipped, scale_v);
        const __m128i magnitude = _mm_and_si128(
            Low32Of64(_mm256_castpd_si256(_mm256_cmp_pd(u, a, _CMP_LT_OQ))),
            one32);
        const __m128i sign = _mm_and_si128(
            Low32Of64(_mm256_castpd_si256(_mm256_cmp_pd(dg, zero, _CMP_LT_OQ))),
            one32);
        const __m128i field =
            _mm_or_si128(_mm_slli_epi32(sign, 1), magnitude);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(fields + t), field);
      }
      for (; t < count; ++t) {
        const double u =
            StreamUniform(args.stream_seed, static_cast<uint64_t>(i + t));
        fields[t] =
            TernGradField(args.values[i + t], args.scale, args.threshold, u);
      }
      PackFieldWords(fields, tile_words, per_word, args.bits, out_words);
      out_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(TernGradField(args.values[i], args.scale, args.threshold, u));
  }
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void TernGradDequantize(const DequantizeArgs& args) {
  BitReader* reader = args.reader;
  const float scale = static_cast<float>(args.scale);
  int64_t i = args.begin;
  while (i < args.end && !reader->AtWordBoundary()) {
    args.out[i] = TernGradValue(reader->Next(), scale);
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    const uint32_t* in_words = reader->cursor();
    reader->SkipWords(words_left);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i sign_bit = _mm256_set1_epi32(
        static_cast<int>(0x80000000u));
    const __m256 scale_v = _mm256_set1_ps(scale);
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      UnpackFieldWords(in_words, tile_words, per_word, args.bits, fields);
      int64_t t = 0;
      for (; t + 8 <= count; t += 8) {
        const __m256i f = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(fields + t));
        const __m256i mag_mask =
            _mm256_cmpeq_epi32(_mm256_and_si256(f, one), one);
        const __m256 magnitude =
            _mm256_and_ps(_mm256_castsi256_ps(mag_mask), scale_v);
        const __m256i neg_mask = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_srli_epi32(f, 1), one), one);
        const __m256 value = _mm256_xor_ps(
            magnitude,
            _mm256_castsi256_ps(_mm256_and_si256(neg_mask, sign_bit)));
        _mm256_storeu_ps(args.out + i + t, value);
      }
      for (; t < count; ++t) {
        args.out[i + t] = TernGradValue(fields[t], scale);
      }
      in_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    args.out[i] = TernGradValue(reader->Next(), scale);
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace lpsgd {
namespace quant_simd {
namespace neon {
namespace {
constexpr int64_t kTileWords = 64;
}  // namespace

LPSGD_HOT_PATH
void TernGradDequantize(const DequantizeArgs& args) {
  BitReader* reader = args.reader;
  const float scale = static_cast<float>(args.scale);
  int64_t i = args.begin;
  while (i < args.end && !reader->AtWordBoundary()) {
    args.out[i] = TernGradValue(reader->Next(), scale);
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    const uint32_t* in_words = reader->cursor();
    reader->SkipWords(words_left);
    const uint32x4_t one = vdupq_n_u32(1);
    const uint32x4_t sign_bit = vdupq_n_u32(0x80000000u);
    const uint32x4_t scale_bits =
        vreinterpretq_u32_f32(vdupq_n_f32(scale));
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      UnpackFieldWords(in_words, tile_words, per_word, args.bits, fields);
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const uint32x4_t f = vld1q_u32(fields + t);
        const uint32x4_t mag_mask = vceqq_u32(vandq_u32(f, one), one);
        const uint32x4_t magnitude = vandq_u32(mag_mask, scale_bits);
        const uint32x4_t neg_mask =
            vceqq_u32(vandq_u32(vshrq_n_u32(f, 1), one), one);
        const uint32x4_t value =
            veorq_u32(magnitude, vandq_u32(neg_mask, sign_bit));
        vst1q_f32(args.out + i + t, vreinterpretq_f32_u32(value));
      }
      for (; t < count; ++t) {
        args.out[i + t] = TernGradValue(fields[t], scale);
      }
      in_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    args.out[i] = TernGradValue(reader->Next(), scale);
  }
}

}  // namespace neon
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__aarch64__)
