// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

TopKCodec::TopKCodec(double density, bool error_feedback)
    : density_(density), error_feedback_(error_feedback) {
  CHECK_GT(density, 0.0);
  CHECK_LE(density, 1.0);
}

std::string TopKCodec::Name() const {
  return StrCat("TopK (", FormatDouble(density_ * 100.0, 1), "%)");
}

int64_t TopKCodec::KeptCount(int64_t n) const {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(density_ * static_cast<double>(n))));
}

int64_t TopKCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const int64_t k = KeptCount(n);
  return static_cast<int64_t>(sizeof(uint32_t)) +
         IndexRunWordCount(n, k) * static_cast<int64_t>(sizeof(uint32_t)) +
         k * static_cast<int64_t>(sizeof(float)) +
         codec_internal::kWireChecksumBytes;
}

int64_t TopKCodec::SparseCount(const Shape& shape) const {
  return KeptCount(shape.element_count());
}

int64_t TopKCodec::NumChunks(const Shape& /*shape*/) const {
  // One selection pass per matrix; the per-element cost dominates.
  return 1;
}

LPSGD_HOT_PATH
void TopKCodec::Encode(const float* grad, const Shape& shape,
                       uint64_t /*stochastic_tag*/,
                       std::vector<float>* error, CodecWorkspace* workspace,
                       std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("topk", /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  CHECK(!error_feedback_ || error != nullptr);
  if (error_feedback_) {
    CHECK_EQ(static_cast<int64_t>(error->size()), n);
  }

  // v = grad + carried error; the selection permutes `order`, so the
  // corrected values are staged once (in reusable workspace scratch) rather
  // than recomputed per comparison.
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  const ElementwiseKernels& elementwise = ActiveElementwiseKernels();
  float* corrected =
      quant_internal::EnsureSize(&workspace->corrected, static_cast<size_t>(n));
  kernels.stage_corrected(grad, error_feedback_ ? error->data() : nullptr,
                          corrected, n);

  // Magnitude threshold scan: |v| precomputed in one elementwise pass so
  // the nth_element comparator is two loads instead of two fabs. The
  // magnitudes are the exact floats std::abs produced before, so the
  // selected set (and thus the wire bytes) is unchanged.
  float* magnitude =
      quant_internal::EnsureSize(&workspace->sample, static_cast<size_t>(n));
  elementwise.abs_f32(corrected, magnitude, n);

  const int64_t k = KeptCount(n);
  std::vector<int64_t>& order = workspace->order;
  quant_internal::EnsureSize(&order, static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](int64_t a, int64_t b) {
                     return magnitude[a] > magnitude[b];
                   });
  // Sort the kept indices so the wire format is deterministic.
  std::sort(order.begin(), order.begin() + k);

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  uint32_t* words = MutableWordsAt(blob, 0);
  words[0] = static_cast<uint32_t>(k);
  PackIndexRun(order.data(), k, n, words + 1);
  float* values = MutableFloatsAt(
      blob, static_cast<int64_t>(sizeof(uint32_t)) +
                IndexRunWordCount(n, k) *
                    static_cast<int64_t>(sizeof(uint32_t)));
  for (int64_t i = 0; i < k; ++i) {
    values[i] = corrected[order[static_cast<size_t>(i)]];
  }

  if (error_feedback_) {
    // Unsent components accumulate; sent components reset.
    for (int64_t i = 0; i < n; ++i) {
      (*error)[static_cast<size_t>(i)] = corrected[i];
    }
    for (int64_t i = 0; i < k; ++i) {
      (*error)[static_cast<size_t>(order[static_cast<size_t>(i)])] = 0.0f;
    }
  }
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status TopKCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                         const Shape& shape, CodecWorkspace* workspace,
                         float* out) const {
  const int64_t n = shape.element_count();
  const int64_t k = KeptCount(n);
  // Stage the sparse form in workspace scratch: the validation inside
  // DecodeSparse must finish before `out` is touched (which must stay
  // intact on error).
  uint32_t* indices = quant_internal::EnsureSize(&workspace->sparse_indices,
                                                 static_cast<size_t>(k));
  float* values = quant_internal::EnsureSize(&workspace->corrected,
                                             static_cast<size_t>(k));
  LPSGD_RETURN_IF_ERROR(
      DecodeSparse(bytes, num_bytes, shape, workspace, indices, values));
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  std::fill(out, out + n, 0.0f);
  for (int64_t i = 0; i < k; ++i) {
    out[indices[i]] = values[i];
  }
  return OkStatus();
}

LPSGD_HOT_PATH
Status TopKCodec::DecodeSparse(const uint8_t* bytes, int64_t num_bytes,
                               const Shape& shape, CodecWorkspace* workspace,
                               uint32_t* indices, float* values) const {
  codec_internal::CodecObsScope obs_scope("topk", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "topk", bytes, num_bytes, EncodedSizeBytes(shape)));
  // The checksum is 32 bits, so collisions are possible: re-validate the
  // framing fields before trusting the payload.
  const uint32_t count = *WordsAt(bytes, 0);
  const int64_t k = KeptCount(n);
  if (static_cast<int64_t>(count) != k) {
    return DataLossError(StrCat("topk: blob claims ", count,
                                " components, expected ", k));
  }
  if (!UnpackIndexRun(WordsAt(bytes, sizeof(uint32_t)), k, n, indices)) {
    return DataLossError(StrCat(
        "topk: component indices not strictly increasing in [0, ", n, ")"));
  }
  const float* wire_values =
      FloatsAt(bytes, static_cast<int64_t>(sizeof(uint32_t)) +
                          IndexRunWordCount(n, k) *
                              static_cast<int64_t>(sizeof(uint32_t)));
  std::memcpy(values, wire_values, static_cast<size_t>(k) * sizeof(float));
  return OkStatus();
}

CodecSpec TopKSpec(double density) {
  CodecSpec spec;
  spec.kind = CodecKind::kTopK;
  spec.density = density;
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkTopKCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily TopKFamily() {
  CodecFamily family;
  family.kind = CodecKind::kTopK;
  family.name = "topk";
  family.help = "top-k sparsification, density in (0,1] required "
                "(topk:<density> or topk:density=<density>)";
  family.keys = {"density"};
  family.matches = [](const std::string& head) { return head == "topk"; };
  family.parse = [](const std::string& /*head*/,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    LPSGD_ASSIGN_OR_RETURN(const std::string text,
                           TakeValueOrKey(params, "density"));
    if (text.empty()) {
      return InvalidArgumentError(
          "topk needs a density (topk:<density> or topk:density=<density>)");
    }
    LPSGD_ASSIGN_OR_RETURN(const double density,
                           ParseDoubleParam(text, "TopK density"));
    if (density <= 0.0 || density > 1.0) {
      return InvalidArgumentError(StrCat("bad TopK density: ", text));
    }
    return TopKSpec(density);
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.density <= 0.0 || spec.density > 1.0) {
      return InvalidArgumentError(StrCat(
          "TopK density must be in (0, 1], got ", spec.density));
    }
    return std::unique_ptr<GradientCodec>(
        new TopKCodec(spec.density, spec.error_feedback));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat("TopK ", FormatDouble(spec.density * 100.0, 1), "%");
  };
  family.short_label = [](const CodecSpec& spec) {
    return StrCat("K", FormatDouble(spec.density * 100.0, 0));
  };
  return family;
}

const CodecRegistrar registrar(TopKFamily());

}  // namespace
}  // namespace lpsgd
