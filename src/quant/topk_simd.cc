// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Vector staging kernel shared by the error-feedback codecs (TopK, ECQ):
// out[i] = grad[i] + error[i], or grad[i] + literal 0.0f when no error is
// carried. The 0.0f add is wire-visible for TopK (it flushes -0.0f to
// +0.0f in the stored values), so the no-error path adds a zero vector
// rather than copying.
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void StageCorrected(const float* grad, const float* error, float* out,
                    int64_t n) {
  int64_t i = 0;
  if (error != nullptr) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(grad + i),
                                              _mm256_loadu_ps(error + i)));
    }
  } else {
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(grad + i),
                                              zero));
    }
  }
  for (; i < n; ++i) {
    out[i] = grad[i] + (error != nullptr ? error[i] : 0.0f);
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)

#if defined(__aarch64__)

#include <arm_neon.h>

namespace lpsgd {
namespace quant_simd {
namespace neon {

LPSGD_HOT_PATH
void StageCorrected(const float* grad, const float* error, float* out,
                    int64_t n) {
  int64_t i = 0;
  if (error != nullptr) {
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(out + i, vaddq_f32(vld1q_f32(grad + i), vld1q_f32(error + i)));
    }
  } else {
    const float32x4_t zero = vdupq_n_f32(0.0f);
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(out + i, vaddq_f32(vld1q_f32(grad + i), zero));
    }
  }
  for (; i < n; ++i) {
    out[i] = grad[i] + (error != nullptr ? error[i] : 0.0f);
  }
}

}  // namespace neon
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__aarch64__)
