// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// AVX2 kernel for the ECQ-SGD fused quantize + residual hot loop. Same
// head/tile/tail structure as qsgd_simd.cc; the tile loop additionally
// dequantizes the chosen level in-register to refresh the error feedback.
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {
namespace {

#include "quant/simd_avx2_common.inc"

constexpr int64_t kTileWords = 64;

}  // namespace

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void EcqQuantize(const QuantizeArgs& args) {
  BitWriter* writer = args.writer;
  const double s = static_cast<double>(args.level_count);
  int64_t i = args.begin;
  while (i < args.end && !writer->AtWordBoundary()) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(EcqFieldSm(args.values[i], args.scale, s, args.level_count,
                           args.bits, u, args.magnitudes,
                           args.error != nullptr ? args.error + i : nullptr));
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    uint32_t* out_words = writer->cursor();
    writer->SkipWords(words_left);
    const bool feedback = args.error != nullptr;
    const __m256d scale_v = _mm256_set1_pd(args.scale);
    const __m128i mag_mask =
        _mm_set1_epi32(static_cast<int>((1u << (args.bits - 1)) - 1u));
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m256d u = Uniform4At(args.stream_seed, i + t);
        const __m128 corrected = _mm_loadu_ps(args.values + i + t);
        const __m256d dg = _mm256_cvtps_pd(corrected);
        const SmLanes lanes =
            QuantizeSm4(dg, args.scale, s, args.level_count, args.bits, u);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(fields + t), lanes.field);
        if (feedback) {
          // residual = float(v) - float(sign ? -m : m), m = table * scale.
          const __m128 dequantized = DequantizeSm4(
              lanes.field, args.magnitudes, scale_v, args.bits - 1, mag_mask);
          _mm_storeu_ps(args.error + i + t,
                        _mm_sub_ps(corrected, dequantized));
        }
      }
      for (; t < count; ++t) {
        const double u =
            StreamUniform(args.stream_seed, static_cast<uint64_t>(i + t));
        fields[t] = EcqFieldSm(
            args.values[i + t], args.scale, s, args.level_count, args.bits, u,
            args.magnitudes, feedback ? args.error + i + t : nullptr);
      }
      PackFieldWords(fields, tile_words, per_word, args.bits, out_words);
      out_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(EcqFieldSm(args.values[i], args.scale, s, args.level_count,
                           args.bits, u, args.magnitudes,
                           args.error != nullptr ? args.error + i : nullptr));
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)
