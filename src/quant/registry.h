// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_REGISTRY_H_
#define LPSGD_QUANT_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "quant/codec.h"

namespace lpsgd {

// The parameter list of one codec spec string: everything after the first
// ':', split on commas. The legacy grammar's single positional value
// ("q4:512", "topk:0.01") is accepted as the first token; any token
// containing '=' is a key=value pair ("q4:bucket=512,norm=l2"). Family
// parsers consume the tokens they understand; CodecSpec::Parse rejects
// whatever is left over, naming the offending token and the keys the
// family accepts.
class CodecParams {
 public:
  // Splits `arg` (already lowercased; empty when the spec had no ':').
  // Fails on empty tokens, empty keys/values, a repeated key, or a
  // positional value that is not the first token.
  [[nodiscard]] static StatusOr<CodecParams> Split(const std::string& arg);

  // Consumes and returns the positional value, or "" when none was given.
  std::string TakePositional();
  // Consumes `key` and returns its value, or nullptr when absent.
  const std::string* Take(const std::string& key);

  // Error unless every token was consumed: names the first leftover token
  // and lists `accepted_keys` (the family's vocabulary).
  [[nodiscard]] Status Finish(const std::string& family,
                              const std::vector<std::string>& accepted_keys)
      const;

 private:
  struct Token {
    std::string key;    // empty for the positional value
    std::string value;
    bool consumed = false;
  };
  std::vector<Token> tokens_;
};

// Strict numeric parsers for family param parsers: the whole token must
// parse, or the error names it ("bad <what>: <value>").
[[nodiscard]] StatusOr<int64_t> ParseInt64Param(const std::string& value,
                                                const std::string& what);
[[nodiscard]] StatusOr<double> ParseDoubleParam(const std::string& value,
                                                const std::string& what);

// Consumes a parameter supplied either positionally ("q4:512") or as
// `key=value` ("q4:bucket=512"). Returns "" when neither form was given
// (values are never empty — CodecParams::Split rejects that) and an error
// naming `key` when both were.
[[nodiscard]] StatusOr<std::string> TakeValueOrKey(CodecParams* params,
                                                   const std::string& key);

// Shared grammar pieces of the QSGD-skeleton families ("q4", "aq8",
// "nuq4", "ecq4"): a `<prefix><bits>` head with bits in [2, 16], and an
// optional bucket size (positional or bucket=). Errors name the family.
[[nodiscard]] bool MatchesBitsHead(const std::string& head,
                                   const std::string& prefix);
[[nodiscard]] StatusOr<int> ParseBitsHead(const std::string& head,
                                          const std::string& prefix,
                                          const std::string& family);
[[nodiscard]] Status TakeBucketParam(CodecParams* params, CodecSpec* spec);

// One codec family's registry entry: everything CodecSpec::Parse / Create /
// Label need, supplied by the codec's own translation unit so the spec
// layer contains no codec-specific branches.
struct CodecFamily {
  CodecKind kind;
  // Canonical grammar head shown in errors and help, e.g. "q<bits>".
  std::string name;
  // One-line grammar summary for CLI help text.
  std::string help;
  // key=value keys the param parser understands (listed in errors).
  std::vector<std::string> keys;
  // True when `head` (lowercased spec text before ':') selects this family.
  std::function<bool(const std::string& head)> matches;
  // Builds a spec from a matched head and its parameters. Unconsumed
  // parameters are rejected by CodecSpec::Parse after this returns.
  std::function<StatusOr<CodecSpec>(const std::string& head,
                                    CodecParams* params)>
      parse;
  // Validates the spec's parameters and instantiates the codec.
  std::function<StatusOr<std::unique_ptr<GradientCodec>>(
      const CodecSpec& spec)>
      create;
  std::function<std::string(const CodecSpec& spec)> label;
  std::function<std::string(const CodecSpec& spec)> short_label;
};

// The global codec family table. Families self-register during static
// initialization via CodecRegistrar objects in their translation units;
// codec_internal::kCodecFamilyLinkAnchor (registry.cc) keeps those TUs
// from being dead-stripped out of the static archive.
class CodecRegistry {
 public:
  static CodecRegistry& Global();

  // CHECK-fails on a duplicate kind or name, or a family missing one of
  // its required callbacks — both are registration-time programming errors.
  void Register(CodecFamily family);

  // nullptr when no family matches/is registered.
  const CodecFamily* FindByHead(const std::string& head) const;
  const CodecFamily* FindByKind(CodecKind kind) const;

  // Canonical family names in registration order (error messages, tests).
  std::vector<std::string> Names() const;
  // One "<name>  <help>" grammar line per family, for CLI usage text.
  std::vector<std::string> HelpLines() const;

 private:
  CodecRegistry() = default;
  std::vector<CodecFamily> families_;
};

// Registers `family` during static initialization. Each codec TU defines
// one at namespace scope:
//   namespace { const CodecRegistrar registrar(MakeMyFamily()); }
// plus a Link<Name>CodecFamily() anchor referenced from registry.cc.
class CodecRegistrar {
 public:
  explicit CodecRegistrar(CodecFamily family);
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_REGISTRY_H_
