// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/policy.h"

#include <algorithm>
#include <numeric>

#include "base/logging.h"

namespace lpsgd {

std::vector<bool> ChooseQuantizedMatrices(
    const std::vector<Shape>& shapes, const std::vector<ParamKind>& kinds,
    const QuantizationPolicyOptions& options) {
  CHECK_EQ(shapes.size(), kinds.size());
  const size_t count = shapes.size();
  std::vector<bool> quantize(count, false);

  // Eligibility by kind first.
  std::vector<bool> eligible(count, true);
  int64_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += shapes[i].element_count();
    if (options.always_bypass_biases && kinds[i] == ParamKind::kBias) {
      eligible[i] = false;
    }
    if (!options.quantize_convolutional &&
        kinds[i] == ParamKind::kConvolutional) {
      eligible[i] = false;
    }
    if (!options.quantize_fully_connected &&
        kinds[i] == ParamKind::kFullyConnected) {
      eligible[i] = false;
    }
  }
  if (total == 0) return quantize;

  // Among eligible matrices, quantize the largest first until the covered
  // fraction reaches the target; every matrix at least as large as the last
  // one admitted is also quantized (a pure size threshold).
  std::vector<size_t> order;
  for (size_t i = 0; i < count; ++i) {
    if (eligible[i]) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return shapes[a].element_count() > shapes[b].element_count();
  });

  int64_t covered = 0;
  int64_t threshold = -1;
  for (size_t idx : order) {
    if (threshold >= 0 && shapes[idx].element_count() < threshold) break;
    quantize[idx] = true;
    covered += shapes[idx].element_count();
    if (threshold < 0 &&
        static_cast<double>(covered) >=
            options.min_quantized_fraction * static_cast<double>(total)) {
      // Size of the last matrix needed to hit the target becomes the
      // threshold; equal-sized matrices still quantize.
      threshold = shapes[idx].element_count();
    }
  }
  return quantize;
}

std::vector<bool> ChooseQuantizedMatrices(
    const std::vector<ParamRef>& params,
    const QuantizationPolicyOptions& options) {
  std::vector<Shape> shapes;
  std::vector<ParamKind> kinds;
  shapes.reserve(params.size());
  kinds.reserve(params.size());
  for (const ParamRef& param : params) {
    shapes.push_back(param.quant_shape);
    kinds.push_back(param.kind);
  }
  return ChooseQuantizedMatrices(shapes, kinds, options);
}

}  // namespace lpsgd
