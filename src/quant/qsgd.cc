// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/qsgd.h"

#include <algorithm>
#include <cmath>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

}  // namespace

QsgdCodec::QsgdCodec(int bits, int64_t bucket_size, QsgdNorm norm,
                     QsgdLevelScheme levels, uint64_t seed)
    : bits_(bits),
      bucket_size_(bucket_size),
      norm_(norm),
      levels_(levels),
      seed_(seed) {
  CHECK_GE(bits, 2);
  CHECK_LE(bits, 16);
  CHECK_GT(bucket_size, 0);
  level_count_ = levels_ == QsgdLevelScheme::kSignMagnitude
                     ? (1u << (bits_ - 1)) - 1u  // s magnitude levels
                     : (1u << bits_) - 2u;       // 2^bits - 1 endpoints
  CHECK_GE(level_count_, 1u);
}

std::string QsgdCodec::Name() const {
  return StrCat("QSGD ", bits_, "bit (b=", bucket_size_, ")");
}

int64_t QsgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const BitPacker packer(bits_);
  return buckets * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

int64_t QsgdCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

LPSGD_HOT_PATH
void QsgdCodec::Encode(const float* grad, const Shape& shape,
                       uint64_t stochastic_tag, std::vector<float>* /*error*/,
                       CodecWorkspace* workspace,
                       std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("qsgd", /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const CounterRng stream(seed_, stochastic_tag);

  // Quantize straight into the wire blob: scales up front, then each field
  // streamed into the packed words — no intermediate field array and no
  // separate packing pass.
  uint8_t* blob =
      quant_internal::EnsureSize(out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);
  BitWriter writer(
      MutableWordsAt(blob, buckets * static_cast<int64_t>(sizeof(float))),
      bits_);

  // Stochastic rounding of a*s between floor and ceil keeps the estimator
  // unbiased (Equation 1); the fused quantize loops live in the
  // runtime-dispatched kernel tables (quant/simd_kernels.h).
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  const ElementwiseKernels& elementwise = ActiveElementwiseKernels();
  quant_simd::QuantizeArgs args;
  args.values = grad;
  args.stream_seed = stream.stream_seed();
  args.bits = bits_;
  args.level_count = level_count_;
  args.writer = &writer;
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);

    double scale = 0.0;
    if (norm_ == QsgdNorm::kL2) {
      // Sequential widened sum: order-sensitive, stays scalar in every
      // dispatch mode so the wire scale is ISA-independent.
      for (int64_t i = begin; i < end; ++i) {
        scale += static_cast<double>(grad[i]) * grad[i];
      }
      scale = std::sqrt(scale);
    } else {
      scale = elementwise.max_abs_f32(grad + begin, end - begin);
    }
    scales[b] = static_cast<float>(scale);
    if (scale == 0.0) {
      // Zero fields decode to exact zeros; keep the stream position.
      for (int64_t i = begin; i < end; ++i) writer.Put(0u);
      continue;
    }

    args.begin = begin;
    args.end = end;
    args.scale = scale;
    if (levels_ == QsgdLevelScheme::kSignMagnitude) {
      kernels.qsgd_quantize_sm(args);
    } else {
      // Symmetric endpoints over [-scale, +scale].
      kernels.qsgd_quantize_sym(args);
    }
  }
  writer.Finish();
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status QsgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                         const Shape& shape, CodecWorkspace* workspace,
                         float* out) const {
  codec_internal::CodecObsScope obs_scope("qsgd", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "qsgd", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  BitReader reader(
      WordsAt(bytes, buckets * static_cast<int64_t>(sizeof(float))), bits_);

  const double s = static_cast<double>(level_count_);
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  quant_simd::DequantizeArgs args;
  args.reader = &reader;
  args.bits = bits_;
  args.s = s;
  args.out = out;
  if (levels_ == QsgdLevelScheme::kSignMagnitude) {
    args.magnitude_mask = (1u << (bits_ - 1)) - 1u;
    // magnitudes[m] performs the identical m / s double division the flat
    // loop used to do per element, so magnitudes[m] * scale in the kernel
    // is bit-identical to the unfused (m / s) * scale.
    double* magnitudes = quant_internal::EnsureSize(
        &workspace->magnitudes, static_cast<size_t>(level_count_) + 1);
    for (uint32_t m = 0; m <= level_count_; ++m) {
      magnitudes[m] = m / s;
    }
    args.magnitudes = magnitudes;
    for (int64_t b = 0; b < buckets; ++b) {
      args.begin = b * bucket_size_;
      args.end = std::min(args.begin + bucket_size_, n);
      args.scale = scales[b];
      kernels.dequantize_sm(args);
    }
  } else {
    for (int64_t b = 0; b < buckets; ++b) {
      args.begin = b * bucket_size_;
      args.end = std::min(args.begin + bucket_size_, n);
      args.scale = scales[b];
      kernels.dequantize_sym(args);
    }
  }
  return OkStatus();
}

CodecSpec QsgdSpec(int bits) {
  CodecSpec spec;
  spec.kind = CodecKind::kQsgd;
  spec.bits = bits;
  // Section 4.4 tuning protocol: bucket 128 for 2bit, 512 for 4/8bit,
  // 8192 for 16bit.
  switch (bits) {
    case 2:
      spec.bucket_size = 128;
      break;
    case 4:
    case 8:
      spec.bucket_size = 512;
      break;
    case 16:
      spec.bucket_size = 8192;
      break;
    default:
      spec.bucket_size = 512;
      break;
  }
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkQsgdCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily QsgdFamily() {
  CodecFamily family;
  family.kind = CodecKind::kQsgd;
  family.name = "q<bits>";
  family.help = "QSGD, bits in [2,16], optional :<bucket> or key=value "
                "(bucket=, norm=max|l2, levels=sm|sym)";
  family.keys = {"bucket", "norm", "levels"};
  family.matches = [](const std::string& head) {
    return MatchesBitsHead(head, "q");
  };
  family.parse = [](const std::string& head,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    LPSGD_ASSIGN_OR_RETURN(const int bits, ParseBitsHead(head, "q", "QSGD"));
    CodecSpec spec = QsgdSpec(bits);
    LPSGD_RETURN_IF_ERROR(TakeBucketParam(params, &spec));
    if (const std::string* norm = params->Take("norm")) {
      if (*norm == "max") {
        spec.norm = QsgdNorm::kMax;
      } else if (*norm == "l2") {
        spec.norm = QsgdNorm::kL2;
      } else {
        return InvalidArgumentError(
            StrCat("bad QSGD norm: ", *norm, " (expected max or l2)"));
      }
    }
    if (const std::string* levels = params->Take("levels")) {
      if (*levels == "sm") {
        spec.levels = QsgdLevelScheme::kSignMagnitude;
      } else if (*levels == "sym") {
        spec.levels = QsgdLevelScheme::kSymmetric;
      } else {
        return InvalidArgumentError(StrCat("bad QSGD level scheme: ",
                                           *levels,
                                           " (expected sm or sym)"));
      }
    }
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bits < 2 || spec.bits > 16) {
      return InvalidArgumentError(
          StrCat("QSGD bits must be in [2, 16], got ", spec.bits));
    }
    if (spec.bucket_size <= 0) {
      return InvalidArgumentError(StrCat(
          "QSGD bucket size must be positive, got ", spec.bucket_size));
    }
    return std::unique_ptr<GradientCodec>(new QsgdCodec(
        spec.bits, spec.bucket_size, spec.norm, spec.levels, spec.seed));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat("QSGD ", spec.bits, "bit (b=", spec.bucket_size, ")");
  };
  family.short_label = [](const CodecSpec& spec) {
    return StrCat("Q", spec.bits);
  };
  return family;
}

const CodecRegistrar registrar(QsgdFamily());

}  // namespace
}  // namespace lpsgd
