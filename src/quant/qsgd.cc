// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/qsgd.h"

#include <algorithm>
#include <cmath>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"

namespace lpsgd {
namespace {

using codec_internal::AppendFloats;
using codec_internal::AppendWords;
using codec_internal::FloatsAt;
using codec_internal::WordsAt;

}  // namespace

QsgdCodec::QsgdCodec(int bits, int64_t bucket_size, QsgdNorm norm,
                     QsgdLevelScheme levels, uint64_t seed)
    : bits_(bits),
      bucket_size_(bucket_size),
      norm_(norm),
      levels_(levels),
      seed_(seed) {
  CHECK_GE(bits, 2);
  CHECK_LE(bits, 16);
  CHECK_GT(bucket_size, 0);
  level_count_ = levels_ == QsgdLevelScheme::kSignMagnitude
                     ? (1u << (bits_ - 1)) - 1u  // s magnitude levels
                     : (1u << bits_) - 2u;       // 2^bits - 1 endpoints
  CHECK_GE(level_count_, 1u);
}

std::string QsgdCodec::Name() const {
  return StrCat("QSGD ", bits_, "bit (b=", bucket_size_, ")");
}

int64_t QsgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const BitPacker packer(bits_);
  return buckets * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t));
}

int64_t QsgdCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

void QsgdCodec::Encode(const float* grad, const Shape& shape,
                       uint64_t stochastic_tag, std::vector<float>* /*error*/,
                       std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("qsgd", /*encode=*/true, out);
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const CounterRng stream(seed_, stochastic_tag);

  std::vector<float> scales(static_cast<size_t>(buckets));
  std::vector<uint32_t> fields(static_cast<size_t>(n), 0u);

  const double s = static_cast<double>(level_count_);
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);

    double scale = 0.0;
    if (norm_ == QsgdNorm::kL2) {
      for (int64_t i = begin; i < end; ++i) {
        scale += static_cast<double>(grad[i]) * grad[i];
      }
      scale = std::sqrt(scale);
    } else {
      for (int64_t i = begin; i < end; ++i) {
        scale = std::max(scale, std::abs(static_cast<double>(grad[i])));
      }
    }
    scales[static_cast<size_t>(b)] = static_cast<float>(scale);
    if (scale == 0.0) continue;  // fields stay 0, decode to exact zeros

    for (int64_t i = begin; i < end; ++i) {
      const double u = stream.UniformAt(static_cast<uint64_t>(i));
      if (levels_ == QsgdLevelScheme::kSignMagnitude) {
        const double a =
            std::min(1.0, std::abs(static_cast<double>(grad[i])) / scale);
        // Stochastic rounding of a*s between floor and ceil keeps the
        // estimator unbiased (Equation 1).
        uint32_t level = static_cast<uint32_t>(a * s);
        const double frac = a * s - level;
        if (u < frac && level < level_count_) ++level;
        if (level > level_count_) level = level_count_;
        const uint32_t sign = grad[i] < 0.0f ? 1u : 0u;
        fields[static_cast<size_t>(i)] =
            (sign << (bits_ - 1)) | level;
      } else {
        // Symmetric endpoints over [-scale, +scale].
        const double a = std::clamp(
            (static_cast<double>(grad[i]) + scale) / (2.0 * scale), 0.0, 1.0);
        uint32_t level = static_cast<uint32_t>(a * s);
        const double frac = a * s - level;
        if (u < frac && level < level_count_) ++level;
        if (level > level_count_) level = level_count_;
        fields[static_cast<size_t>(i)] = level;
      }
    }
  }

  const BitPacker packer(bits_);
  std::vector<uint32_t> words(static_cast<size_t>(packer.WordCount(n)));
  packer.Pack(fields.data(), n, words.data());

  out->clear();
  out->reserve(static_cast<size_t>(EncodedSizeBytes(shape)));
  AppendFloats(scales.data(), buckets, out);
  AppendWords(words.data(), static_cast<int64_t>(words.size()), out);
  CHECK_EQ(static_cast<int64_t>(out->size()), EncodedSizeBytes(shape));
}

void QsgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                       const Shape& shape, float* out) const {
  codec_internal::CodecObsScope obs_scope("qsgd", /*encode=*/false);
  const int64_t n = shape.element_count();
  CHECK_EQ(num_bytes, EncodedSizeBytes(shape));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  const uint32_t* words =
      WordsAt(bytes, buckets * static_cast<int64_t>(sizeof(float)));

  const BitPacker packer(bits_);
  const double s = static_cast<double>(level_count_);
  const uint32_t magnitude_mask = (1u << (bits_ - 1)) - 1u;
  for (int64_t i = 0; i < n; ++i) {
    const double scale = scales[i / bucket_size_];
    const uint32_t field = packer.Get(words, i);
    if (levels_ == QsgdLevelScheme::kSignMagnitude) {
      const bool negative = (field >> (bits_ - 1)) & 1u;
      const double magnitude = (field & magnitude_mask) / s * scale;
      out[i] = static_cast<float>(negative ? -magnitude : magnitude);
    } else {
      out[i] = static_cast<float>(-scale + 2.0 * scale * field / s);
    }
  }
}

}  // namespace lpsgd
