// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_QSGD_H_
#define LPSGD_QUANT_QSGD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// QSGD (Alistarh et al.): stochastic quantization to a small set of
// levels. The gradient is flattened, split into buckets of consecutive
// elements (Section 3.2.2: bucketing controls quantization variance), and
// each bucket is scaled by its 2-norm or max-norm; element magnitudes are
// stochastically rounded to the nearest of s uniformly-spaced levels so the
// quantizer is unbiased: E[Q(v)] = v.
//
// Wire format: one fp32 scale per bucket, then `bits` bits per element
// packed into 32-bit words. With the sign-magnitude scheme, each field is
// 1 sign bit + (bits-1) magnitude bits (s = 2^(bits-1) - 1 levels); with
// the symmetric scheme, each field indexes one of 2^bits - 1 endpoints of
// equal sub-intervals of [-scale, +scale].
class QsgdCodec : public GradientCodec {
 public:
  QsgdCodec(int bits, int64_t bucket_size, QsgdNorm norm,
            QsgdLevelScheme levels, uint64_t seed);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int bits() const { return bits_; }
  int64_t bucket_size() const { return bucket_size_; }

 private:
  int bits_;
  int64_t bucket_size_;
  QsgdNorm norm_;
  QsgdLevelScheme levels_;
  uint64_t seed_;
  // Number of magnitude levels s (sign-magnitude) or total levels minus
  // one (symmetric).
  uint32_t level_count_;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_QSGD_H_
