// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/nuqsgd.h"

#include <algorithm>
#include <cmath>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/thread_annotations.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

// Fills levels[0..s] with the exponential grid l_0 = 0, l_j = 2^(j - s).
// Hoisted into workspace scratch so Encode and Decode share one table
// build per call instead of a pow() per element.
double* BuildLevelTable(uint32_t s, CodecWorkspace* workspace) {
  double* levels = quant_internal::EnsureSize(&workspace->magnitudes,
                                              static_cast<size_t>(s) + 1);
  levels[0] = 0.0;
  for (uint32_t j = 1; j <= s; ++j) {
    levels[j] = std::ldexp(1.0, static_cast<int>(j) - static_cast<int>(s));
  }
  return levels;
}

}  // namespace

NuqsgdCodec::NuqsgdCodec(int bits, int64_t bucket_size, uint64_t seed)
    : bits_(bits), bucket_size_(bucket_size), seed_(seed) {
  CHECK_GE(bits, 2);
  CHECK_LE(bits, 16);
  CHECK_GT(bucket_size, 0);
  level_count_ = (1u << (bits_ - 1)) - 1u;
  CHECK_GE(level_count_, 1u);
}

std::string NuqsgdCodec::Name() const {
  return StrCat("NUQSGD ", bits_, "bit (b=", bucket_size_, ")");
}

int64_t NuqsgdCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

int64_t NuqsgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const BitPacker packer(bits_);
  return NumChunks(shape) * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

LPSGD_HOT_PATH
void NuqsgdCodec::Encode(const float* grad, const Shape& shape,
                         uint64_t stochastic_tag,
                         std::vector<float>* /*error*/,
                         CodecWorkspace* workspace,
                         std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("nuqsgd", /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const CounterRng stream(seed_, stochastic_tag);
  const uint32_t s = level_count_;
  const int s_int = static_cast<int>(s);
  const double* levels = BuildLevelTable(s, workspace);

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);
  BitWriter writer(
      MutableWordsAt(blob, buckets * static_cast<int64_t>(sizeof(float))),
      bits_);

  // The exponential-grid bracket search and stochastic rounding (unbiased:
  // E[Q(a)] = a) run through the runtime-dispatched kernel table.
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  quant_simd::QuantizeArgs args;
  args.values = grad;
  args.stream_seed = stream.stream_seed();
  args.bits = bits_;
  args.level_count = static_cast<uint32_t>(s_int);
  args.writer = &writer;
  args.magnitudes = levels;
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);

    // Sequential widened L2 sum: order-sensitive, stays scalar in every
    // dispatch mode so the wire scale is ISA-independent.
    double scale = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      scale += static_cast<double>(grad[i]) * grad[i];
    }
    scale = std::sqrt(scale);
    scales[b] = static_cast<float>(scale);
    if (scale == 0.0) {
      // Zero fields decode to exact zeros; keep the stream position.
      for (int64_t i = begin; i < end; ++i) writer.Put(0u);
      continue;
    }

    args.begin = begin;
    args.end = end;
    args.scale = scale;
    kernels.nuq_quantize(args);
  }
  writer.Finish();
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status NuqsgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                           const Shape& shape, CodecWorkspace* workspace,
                           float* out) const {
  codec_internal::CodecObsScope obs_scope("nuqsgd", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "nuqsgd", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  BitReader reader(
      WordsAt(bytes, buckets * static_cast<int64_t>(sizeof(float))), bits_);
  const double* levels = BuildLevelTable(level_count_, workspace);

  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  quant_simd::DequantizeArgs args;
  args.reader = &reader;
  args.bits = bits_;
  args.magnitude_mask = (1u << (bits_ - 1)) - 1u;
  args.magnitudes = levels;
  args.out = out;
  for (int64_t b = 0; b < buckets; ++b) {
    args.begin = b * bucket_size_;
    args.end = std::min(args.begin + bucket_size_, n);
    args.scale = scales[b];
    kernels.dequantize_sm(args);
  }
  return OkStatus();
}

CodecSpec NuqsgdSpec(int bits) {
  CodecSpec spec = QsgdSpec(bits);
  spec.kind = CodecKind::kNuqsgd;
  spec.norm = QsgdNorm::kL2;  // the norm the NUQSGD analysis assumes
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkNuqsgdCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily NuqsgdFamily() {
  CodecFamily family;
  family.kind = CodecKind::kNuqsgd;
  family.name = "nuq<bits>";
  family.help = "nonuniform (exponential-level) QSGD, bits in [2,16], "
                "optional :<bucket> or bucket=";
  family.keys = {"bucket"};
  family.matches = [](const std::string& head) {
    return MatchesBitsHead(head, "nuq");
  };
  family.parse = [](const std::string& head,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    LPSGD_ASSIGN_OR_RETURN(const int bits,
                           ParseBitsHead(head, "nuq", "NUQSGD"));
    CodecSpec spec = NuqsgdSpec(bits);
    LPSGD_RETURN_IF_ERROR(TakeBucketParam(params, &spec));
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bits < 2 || spec.bits > 16) {
      return InvalidArgumentError(
          StrCat("NUQSGD bits must be in [2, 16], got ", spec.bits));
    }
    if (spec.bucket_size <= 0) {
      return InvalidArgumentError(StrCat(
          "NUQSGD bucket size must be positive, got ", spec.bucket_size));
    }
    return std::unique_ptr<GradientCodec>(
        new NuqsgdCodec(spec.bits, spec.bucket_size, spec.seed));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat("NUQSGD ", spec.bits, "bit (b=", spec.bucket_size, ")");
  };
  family.short_label = [](const CodecSpec& spec) {
    return StrCat("NQ", spec.bits);
  };
  return family;
}

const CodecRegistrar registrar(NuqsgdFamily());

}  // namespace
}  // namespace lpsgd
