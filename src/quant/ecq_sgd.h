// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_ECQ_SGD_H_
#define LPSGD_QUANT_ECQ_SGD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// ECQ-SGD (Wu et al., ICML 2018): error-compensated quantized SGD. Each
// step quantizes the error-corrected gradient v = g + e with QSGD's
// bucketed sign-magnitude quantizer, then carries the fresh quantization
// residual e' = v - Q(v) into the next step through the same per-
// (rank, matrix) error-feedback buffer contract 1bitSGD and TopK use.
// Compensation bounds the accumulated quantization error, so aggressive
// (low-bit) settings that diverge under plain QSGD stay close to the
// full-precision trajectory.
//
// Wire format: identical to QSGD sign-magnitude — one fp32 max-norm scale
// per bucket, `bits`-bit fields packed into 32-bit words, trailing
// integrity word. The compensation lives entirely in the caller-owned
// error buffer; the wire carries no extra state.
class EcqSgdCodec : public GradientCodec {
 public:
  EcqSgdCodec(int bits, int64_t bucket_size, bool error_feedback,
              uint64_t seed);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  bool UsesErrorFeedback() const override { return error_feedback_; }
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int bits() const { return bits_; }
  int64_t bucket_size() const { return bucket_size_; }

 private:
  int bits_;
  int64_t bucket_size_;
  bool error_feedback_;
  uint64_t seed_;
  uint32_t level_count_;  // s: number of magnitude levels
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_ECQ_SGD_H_
