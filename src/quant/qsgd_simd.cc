// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// AVX2 kernels for the QSGD bucket quantize/dequantize hot loops. Structure
// shared by every vector codec kernel: run the scalar golden helper for the
// ragged head until the bit stream reaches a word boundary, then process
// whole words through a stack tile (quantize 4 lanes at a time into staged
// fields, bulk pack/unpack via PackFieldWords/UnpackFieldWords through the
// writer/reader cursor), and finish the tail with the scalar helper again.
// Wire bytes are bit-identical to the scalar table by construction.
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {
namespace {

#include "quant/simd_avx2_common.inc"

// Whole words staged per tile; 64 words * up to 16 fields = 4 KiB on stack.
constexpr int64_t kTileWords = 64;

}  // namespace

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void QsgdQuantizeSm(const QuantizeArgs& args) {
  BitWriter* writer = args.writer;
  const double s = static_cast<double>(args.level_count);
  int64_t i = args.begin;
  while (i < args.end && !writer->AtWordBoundary()) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(QsgdFieldSm(args.values[i], args.scale, s, args.level_count,
                            args.bits, u));
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    uint32_t* out_words = writer->cursor();
    writer->SkipWords(words_left);
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m256d u = Uniform4At(args.stream_seed, i + t);
        const __m256d dg = _mm256_cvtps_pd(_mm_loadu_ps(args.values + i + t));
        const SmLanes lanes =
            QuantizeSm4(dg, args.scale, s, args.level_count, args.bits, u);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(fields + t), lanes.field);
      }
      for (; t < count; ++t) {
        const double u =
            StreamUniform(args.stream_seed, static_cast<uint64_t>(i + t));
        fields[t] = QsgdFieldSm(args.values[i + t], args.scale, s,
                                args.level_count, args.bits, u);
      }
      PackFieldWords(fields, tile_words, per_word, args.bits, out_words);
      out_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(QsgdFieldSm(args.values[i], args.scale, s, args.level_count,
                            args.bits, u));
  }
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void QsgdQuantizeSym(const QuantizeArgs& args) {
  BitWriter* writer = args.writer;
  const double s = static_cast<double>(args.level_count);
  const double two_scale = 2.0 * args.scale;
  int64_t i = args.begin;
  while (i < args.end && !writer->AtWordBoundary()) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(
        QsgdFieldSym(args.values[i], args.scale, s, args.level_count, u));
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    uint32_t* out_words = writer->cursor();
    writer->SkipWords(words_left);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d scale_v = _mm256_set1_pd(args.scale);
    const __m256d two_scale_v = _mm256_set1_pd(two_scale);
    const __m256d s_v = _mm256_set1_pd(s);
    const __m128i lc = _mm_set1_epi32(static_cast<int>(args.level_count));
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m256d u = Uniform4At(args.stream_seed, i + t);
        const __m256d dg = _mm256_cvtps_pd(_mm_loadu_ps(args.values + i + t));
        // std::clamp((g + scale) / (2*scale), 0, 1): select-form clamp.
        __m256d a =
            _mm256_div_pd(_mm256_add_pd(dg, scale_v), two_scale_v);
        a = _mm256_blendv_pd(a, zero, _mm256_cmp_pd(a, zero, _CMP_LT_OQ));
        a = _mm256_blendv_pd(a, one, _mm256_cmp_pd(one, a, _CMP_LT_OQ));
        const __m128i level =
            StochasticLevel4(_mm256_mul_pd(a, s_v), u, lc);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(fields + t), level);
      }
      for (; t < count; ++t) {
        const double u =
            StreamUniform(args.stream_seed, static_cast<uint64_t>(i + t));
        fields[t] = QsgdFieldSym(args.values[i + t], args.scale, s,
                                 args.level_count, u);
      }
      PackFieldWords(fields, tile_words, per_word, args.bits, out_words);
      out_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    writer->Put(
        QsgdFieldSym(args.values[i], args.scale, s, args.level_count, u));
  }
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void DequantizeSm(const DequantizeArgs& args) {
  BitReader* reader = args.reader;
  int64_t i = args.begin;
  while (i < args.end && !reader->AtWordBoundary()) {
    args.out[i] = quant_simd::DequantizeSm(reader->Next(), args.magnitudes,
                                           args.scale, args.bits,
                                           args.magnitude_mask);
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    const uint32_t* in_words = reader->cursor();
    reader->SkipWords(words_left);
    const __m256d scale_v = _mm256_set1_pd(args.scale);
    const __m128i mask = _mm_set1_epi32(static_cast<int>(args.magnitude_mask));
    const int sign_shift = args.bits - 1;
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      UnpackFieldWords(in_words, tile_words, per_word, args.bits, fields);
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m128i field =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(fields + t));
        _mm_storeu_ps(
            args.out + i + t,
            DequantizeSm4(field, args.magnitudes, scale_v, sign_shift, mask));
      }
      for (; t < count; ++t) {
        args.out[i + t] =
            quant_simd::DequantizeSm(fields[t], args.magnitudes, args.scale,
                                     args.bits, args.magnitude_mask);
      }
      in_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    args.out[i] = quant_simd::DequantizeSm(reader->Next(), args.magnitudes,
                                           args.scale, args.bits,
                                           args.magnitude_mask);
  }
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void DequantizeSym(const DequantizeArgs& args) {
  BitReader* reader = args.reader;
  const double two_scale = 2.0 * args.scale;
  int64_t i = args.begin;
  while (i < args.end && !reader->AtWordBoundary()) {
    args.out[i] = quant_simd::DequantizeSym(reader->Next(), args.scale,
                                            two_scale, args.s);
    ++i;
  }
  const int per_word = 32 / args.bits;
  int64_t words_left = (args.end - i) / per_word;
  if (words_left > 0) {
    const uint32_t* in_words = reader->cursor();
    reader->SkipWords(words_left);
    const __m256d neg_scale_v = _mm256_set1_pd(-args.scale);
    const __m256d two_scale_v = _mm256_set1_pd(two_scale);
    const __m256d s_v = _mm256_set1_pd(args.s);
    uint32_t fields[kTileWords * 16];
    while (words_left > 0) {
      const int64_t tile_words = std::min(words_left, kTileWords);
      const int64_t count = tile_words * per_word;
      UnpackFieldWords(in_words, tile_words, per_word, args.bits, fields);
      int64_t t = 0;
      for (; t + 4 <= count; t += 4) {
        const __m128i field =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(fields + t));
        // -scale + two_scale * field / s, in scalar evaluation order.
        const __m256d v = _mm256_add_pd(
            neg_scale_v,
            _mm256_div_pd(
                _mm256_mul_pd(two_scale_v, _mm256_cvtepi32_pd(field)), s_v));
        _mm_storeu_ps(args.out + i + t, _mm256_cvtpd_ps(v));
      }
      for (; t < count; ++t) {
        args.out[i + t] = quant_simd::DequantizeSym(fields[t], args.scale,
                                                    two_scale, args.s);
      }
      in_words += tile_words;
      i += count;
      words_left -= tile_words;
    }
  }
  for (; i < args.end; ++i) {
    args.out[i] = quant_simd::DequantizeSym(reader->Next(), args.scale,
                                            two_scale, args.s);
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)
