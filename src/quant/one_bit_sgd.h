// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_ONE_BIT_SGD_H_
#define LPSGD_QUANT_ONE_BIT_SGD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// 1bitSGD (Seide et al., Algorithm 2): each element is replaced by the
// average of the same-signed elements of its chunk, one sign bit per
// element is transmitted together with the two averages (avg+, avg-), and
// the quantization error is carried into the next iteration (error
// feedback).
//
// This class is the stock CNTK variant, which chunks per *column* of the
// CNTK tensor view — columns have shape.rows() elements. On convolution
// kernels (rows = kernel width, 1-3) this sends ~2 floats per 1-3 gradient
// values: no compression, and a per-column kernel launch. That artefact is
// central to the paper's Section 3.2/5.2 analysis and is reproduced here
// deliberately.
class OneBitSgdCodec : public GradientCodec {
 public:
  explicit OneBitSgdCodec(bool error_feedback = true)
      : error_feedback_(error_feedback) {}

  std::string Name() const override { return "1bitSGD"; }
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  bool UsesErrorFeedback() const override { return error_feedback_; }
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

 private:
  bool error_feedback_;
};

// 1bitSGD* (Section 3.2, "Reshaped 1bitSGD"): identical math, but the
// tensor is flattened and chunked into fixed-size buckets of consecutive
// elements, fixing the per-column artefact. Bucket size 64 preserves
// accuracy across the paper's networks.
class OneBitSgdReshapedCodec : public GradientCodec {
 public:
  explicit OneBitSgdReshapedCodec(int64_t bucket_size,
                                  bool error_feedback = true);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  bool UsesErrorFeedback() const override { return error_feedback_; }
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int64_t bucket_size() const { return bucket_size_; }

 private:
  int64_t bucket_size_;
  bool error_feedback_;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_ONE_BIT_SGD_H_
