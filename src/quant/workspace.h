// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_WORKSPACE_H_
#define LPSGD_QUANT_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/profile.h"

namespace lpsgd {

// Reusable scratch for one codec Encode/Decode call chain. The buffers grow
// to the largest matrix they have seen and are never shrunk, so a caller
// that keeps one workspace per thread (the aggregators keep one per
// thread-pool slot, see ThreadPool::CurrentSlot()) reaches a steady state
// with zero heap allocations on the codec path — the property
// tests/quant/workspace_test.cc asserts.
//
// A workspace carries no cross-call state: every codec fully overwrites
// whatever region of a buffer it reads, so workspaces may be shared across
// codecs, matrices, and iterations freely (but not across threads — a
// workspace is single-threaded scratch).
struct CodecWorkspace {
  // TopK: error-corrected gradient (grad + carried error).
  std::vector<float> corrected;
  // TopK: element order for the magnitude selection.
  std::vector<int64_t> order;
  // AdaptiveQSGD: subsampled normalized magnitudes for quantile placement.
  // TopK: |corrected| staged for the magnitude threshold scan.
  std::vector<float> sample;
  // AdaptiveQSGD: level table under construction.
  std::vector<float> levels;
  // AdaptiveQSGD: coordinate-descent trial placement.
  std::vector<float> trial;
  // QSGD decode: per-level magnitude table (level / s), reused across
  // buckets.
  std::vector<double> magnitudes;
  // TopK dense decode: unpacked component indices staged for validation
  // before `out` is touched.
  std::vector<uint32_t> sparse_indices;
  // Caller-side scratch blob for encode-then-decode round trips (the
  // aggregators' stage-2 re-encode).
  std::vector<uint8_t> blob;
  // Per-slot profiler scratch: codec Encode/Decode calls and the
  // aggregators' hot loops accumulate phase spans here (fixed POD arrays,
  // so the hot path stays allocation-free); the owning aggregator merges
  // and clears it serially after each exchange (obs/profile.h).
  obs::PhaseTimes phases;
};

namespace quant_internal {

// Bumps the quant/workspace/grow_events and quant/workspace/grown_bytes
// counters; no-op while metrics are disabled. Workspace growth is expected
// during the first iterations (warmup) and must stop afterwards — the
// steady-state invariant the aggregator allocation test watches.
void RecordWorkspaceGrowth(int64_t bytes);

// Resizes `buf` to `count` elements, recording growth when the resize has
// to allocate, and returns the data pointer. In steady state (capacity
// already sufficient) this never touches the heap.
template <typename T>
T* EnsureSize(std::vector<T>* buf, size_t count) {
  if (buf->capacity() < count) {
    RecordWorkspaceGrowth(
        static_cast<int64_t>((count - buf->capacity()) * sizeof(T)));
  }
  buf->resize(count);
  return buf->data();
}

}  // namespace quant_internal

}  // namespace lpsgd

#endif  // LPSGD_QUANT_WORKSPACE_H_
