// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/codec.h"

#include <cctype>
#include <cstring>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/strings.h"
#include "quant/registry.h"
#include "quant/workspace.h"

namespace lpsgd {

void GradientCodec::Encode(const float* grad, const Shape& shape,
                           uint64_t stochastic_tag,
                           std::vector<float>* error,
                           std::vector<uint8_t>* out) const {
  CodecWorkspace workspace;
  Encode(grad, shape, stochastic_tag, error, &workspace, out);
}

Status GradientCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                             const Shape& shape, float* out) const {
  CodecWorkspace workspace;
  return Decode(bytes, num_bytes, shape, &workspace, out);
}

Status GradientCodec::DecodeSparse(const uint8_t* /*bytes*/,
                                   int64_t /*num_bytes*/,
                                   const Shape& /*shape*/,
                                   CodecWorkspace* /*workspace*/,
                                   uint32_t* /*indices*/,
                                   float* /*values*/) const {
  return FailedPreconditionError(
      StrCat(Name(), " is a dense codec and has no sparse wire form"));
}

std::string CodecSpec::Label() const {
  const CodecFamily* family = CodecRegistry::Global().FindByKind(kind);
  return family == nullptr ? "unknown" : family->label(*this);
}

std::string CodecSpec::ShortLabel() const {
  const CodecFamily* family = CodecRegistry::Global().FindByKind(kind);
  return family == nullptr ? "?" : family->short_label(*this);
}

StatusOr<std::unique_ptr<GradientCodec>> CodecSpec::Create() const {
  const CodecFamily* family = CodecRegistry::Global().FindByKind(kind);
  if (family == nullptr) return InvalidArgumentError("unknown codec kind");
  return family->create(*this);
}

namespace {

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

StatusOr<CodecSpec> CodecSpec::Parse(const std::string& text) {
  const std::string lower = ToLower(text);
  const auto colon = lower.find(':');
  const std::string head = lower.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : lower.substr(colon + 1);
  if (colon != std::string::npos && arg.empty()) {
    return InvalidArgumentError(StrCat("dangling ':' in codec: ", text));
  }

  const CodecRegistry& registry = CodecRegistry::Global();
  const CodecFamily* family = registry.FindByHead(head);
  if (family == nullptr) {
    return InvalidArgumentError(
        StrCat("unrecognized codec: '", head, "' (registered codecs: ",
               StrJoin(registry.Names(), ", "), ")"));
  }
  LPSGD_ASSIGN_OR_RETURN(CodecParams params, CodecParams::Split(arg));
  LPSGD_ASSIGN_OR_RETURN(CodecSpec spec, family->parse(head, &params));
  LPSGD_RETURN_IF_ERROR(params.Finish(family->name, family->keys));
  return spec;
}

StatusOr<std::unique_ptr<GradientCodec>> CreateCodec(const CodecSpec& spec) {
  return spec.Create();
}

StatusOr<CodecSpec> ParseCodecSpec(const std::string& text) {
  return CodecSpec::Parse(text);
}

namespace codec_internal {

CodecObsScope::~CodecObsScope() {
  if (!active_) return;
  obs::Observe(encode_ ? "quant/encode_seconds" : "quant/decode_seconds",
               obs::MonotonicSeconds() - start_);
  obs::Count(StrCat("quant/", codec_,
                    encode_ ? "/encode_calls" : "/decode_calls"));
  if (encoded_ != nullptr) {
    obs::Count("quant/encode_bytes", static_cast<int64_t>(encoded_->size()));
  }
}

void SealWireBlob(uint8_t* blob, int64_t payload_bytes) {
  const uint32_t hash = Fnv1a32(blob, payload_bytes);
  blob[payload_bytes + 0] = static_cast<uint8_t>(hash & 0xffu);
  blob[payload_bytes + 1] = static_cast<uint8_t>((hash >> 8) & 0xffu);
  blob[payload_bytes + 2] = static_cast<uint8_t>((hash >> 16) & 0xffu);
  blob[payload_bytes + 3] = static_cast<uint8_t>((hash >> 24) & 0xffu);
}

Status VerifyWireBlob(std::string_view codec, const uint8_t* bytes,
                      int64_t num_bytes, int64_t expected_bytes) {
  if (num_bytes != expected_bytes) {
    if (obs::MetricsEnabled()) obs::Count("comm/checksum_failures");
    return DataLossError(StrCat(codec, ": encoded blob is ", num_bytes,
                                " bytes, expected ", expected_bytes));
  }
  const int64_t payload_bytes = num_bytes - kWireChecksumBytes;
  const uint32_t expected_hash =
      static_cast<uint32_t>(bytes[payload_bytes + 0]) |
      (static_cast<uint32_t>(bytes[payload_bytes + 1]) << 8) |
      (static_cast<uint32_t>(bytes[payload_bytes + 2]) << 16) |
      (static_cast<uint32_t>(bytes[payload_bytes + 3]) << 24);
  const uint32_t actual_hash = Fnv1a32(bytes, payload_bytes);
  if (actual_hash != expected_hash) {
    if (obs::MetricsEnabled()) obs::Count("comm/checksum_failures");
    return DataLossError(StrCat(codec, ": wire checksum mismatch"));
  }
  return OkStatus();
}

void AppendFloats(const float* values, int64_t count,
                  std::vector<uint8_t>* out) {
  const size_t offset = out->size();
  out->resize(offset + static_cast<size_t>(count) * sizeof(float));
  std::memcpy(out->data() + offset, values,
              static_cast<size_t>(count) * sizeof(float));
}

void AppendWords(const uint32_t* words, int64_t count,
                 std::vector<uint8_t>* out) {
  const size_t offset = out->size();
  out->resize(offset + static_cast<size_t>(count) * sizeof(uint32_t));
  std::memcpy(out->data() + offset, words,
              static_cast<size_t>(count) * sizeof(uint32_t));
}

const float* FloatsAt(const uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<const float*>(bytes + offset_bytes);
}

const uint32_t* WordsAt(const uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<const uint32_t*>(bytes + offset_bytes);
}

float* MutableFloatsAt(uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<float*>(bytes + offset_bytes);
}

uint32_t* MutableWordsAt(uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<uint32_t*>(bytes + offset_bytes);
}

}  // namespace codec_internal
}  // namespace lpsgd
