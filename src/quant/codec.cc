// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/codec.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/strings.h"
#include "quant/adaptive_qsgd.h"
#include "quant/full_precision.h"
#include "quant/one_bit_sgd.h"
#include "quant/qsgd.h"
#include "quant/topk.h"
#include "quant/workspace.h"

namespace lpsgd {

void GradientCodec::Encode(const float* grad, const Shape& shape,
                           uint64_t stochastic_tag,
                           std::vector<float>* error,
                           std::vector<uint8_t>* out) const {
  CodecWorkspace workspace;
  Encode(grad, shape, stochastic_tag, error, &workspace, out);
}

Status GradientCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                             const Shape& shape, float* out) const {
  CodecWorkspace workspace;
  return Decode(bytes, num_bytes, shape, &workspace, out);
}

std::string CodecSpec::Label() const {
  switch (kind) {
    case CodecKind::kFullPrecision:
      return "32bit";
    case CodecKind::kOneBitSgd:
      return error_feedback ? "1bitSGD" : "1bitSGD (no EF)";
    case CodecKind::kOneBitSgdReshaped:
      return StrCat(error_feedback ? "1bitSGD*" : "1bitSGD* (no EF)", " (b=",
                    bucket_size, ")");
    case CodecKind::kQsgd:
      return StrCat("QSGD ", bits, "bit (b=", bucket_size, ")");
    case CodecKind::kQsgdAdaptive:
      return StrCat("AdaptiveQSGD ", bits, "bit (b=", bucket_size, ")");
    case CodecKind::kTopK:
      return StrCat("TopK ", FormatDouble(density * 100.0, 1), "%");
  }
  return "unknown";
}

std::string CodecSpec::ShortLabel() const {
  switch (kind) {
    case CodecKind::kFullPrecision:
      return "32bit";
    case CodecKind::kOneBitSgd:
      return "1b";
    case CodecKind::kOneBitSgdReshaped:
      return "1b*";
    case CodecKind::kQsgd:
      return StrCat("Q", bits);
    case CodecKind::kQsgdAdaptive:
      return StrCat("AQ", bits);
    case CodecKind::kTopK:
      return StrCat("K", FormatDouble(density * 100.0, 0));
  }
  return "?";
}

CodecSpec FullPrecisionSpec() { return CodecSpec{}; }

CodecSpec QsgdSpec(int bits) {
  CodecSpec spec;
  spec.kind = CodecKind::kQsgd;
  spec.bits = bits;
  // Section 4.4 tuning protocol: bucket 128 for 2bit, 512 for 4/8bit,
  // 8192 for 16bit.
  switch (bits) {
    case 2:
      spec.bucket_size = 128;
      break;
    case 4:
    case 8:
      spec.bucket_size = 512;
      break;
    case 16:
      spec.bucket_size = 8192;
      break;
    default:
      spec.bucket_size = 512;
      break;
  }
  return spec;
}

CodecSpec OneBitSgdSpec() {
  CodecSpec spec;
  spec.kind = CodecKind::kOneBitSgd;
  return spec;
}

CodecSpec OneBitSgdReshapedSpec(int64_t bucket_size) {
  CodecSpec spec;
  spec.kind = CodecKind::kOneBitSgdReshaped;
  spec.bucket_size = bucket_size;
  return spec;
}

CodecSpec TopKSpec(double density) {
  CodecSpec spec;
  spec.kind = CodecKind::kTopK;
  spec.density = density;
  return spec;
}

CodecSpec AdaptiveQsgdSpec(int bits) {
  CodecSpec spec = QsgdSpec(bits);
  spec.kind = CodecKind::kQsgdAdaptive;
  return spec;
}

StatusOr<std::unique_ptr<GradientCodec>> CodecSpec::Create() const {
  const CodecSpec& spec = *this;
  switch (spec.kind) {
    case CodecKind::kFullPrecision:
      return std::unique_ptr<GradientCodec>(new FullPrecisionCodec());
    case CodecKind::kOneBitSgd:
      return std::unique_ptr<GradientCodec>(
          new OneBitSgdCodec(spec.error_feedback));
    case CodecKind::kOneBitSgdReshaped:
      if (spec.bucket_size <= 0) {
        return InvalidArgumentError(
            StrCat("1bitSGD* bucket size must be positive, got ",
                   spec.bucket_size));
      }
      return std::unique_ptr<GradientCodec>(new OneBitSgdReshapedCodec(
          spec.bucket_size, spec.error_feedback));
    case CodecKind::kQsgd: {
      if (spec.bits < 2 || spec.bits > 16) {
        return InvalidArgumentError(
            StrCat("QSGD bits must be in [2, 16], got ", spec.bits));
      }
      if (spec.bucket_size <= 0) {
        return InvalidArgumentError(StrCat(
            "QSGD bucket size must be positive, got ", spec.bucket_size));
      }
      return std::unique_ptr<GradientCodec>(new QsgdCodec(
          spec.bits, spec.bucket_size, spec.norm, spec.levels, spec.seed));
    }
    case CodecKind::kQsgdAdaptive:
      if (spec.bits < 2 || spec.bits > 16) {
        return InvalidArgumentError(
            StrCat("AdaptiveQSGD bits must be in [2, 16], got ", spec.bits));
      }
      if (spec.bucket_size <= 0) {
        return InvalidArgumentError(StrCat(
            "AdaptiveQSGD bucket size must be positive, got ",
            spec.bucket_size));
      }
      return std::unique_ptr<GradientCodec>(new AdaptiveQsgdCodec(
          spec.bits, spec.bucket_size, spec.seed));
    case CodecKind::kTopK:
      if (spec.density <= 0.0 || spec.density > 1.0) {
        return InvalidArgumentError(
            StrCat("TopK density must be in (0, 1], got ", spec.density));
      }
      return std::unique_ptr<GradientCodec>(
          new TopKCodec(spec.density, spec.error_feedback));
  }
  return InvalidArgumentError("unknown codec kind");
}

namespace {

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

StatusOr<CodecSpec> CodecSpec::Parse(const std::string& text) {
  const std::string lower = ToLower(text);
  const auto colon = lower.find(':');
  const std::string head = lower.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : lower.substr(colon + 1);
  if (colon != std::string::npos && arg.empty()) {
    return InvalidArgumentError(StrCat("dangling ':' in codec: ", text));
  }

  if (head == "32bit" || head == "fp32") {
    if (!arg.empty()) return InvalidArgumentError("32bit takes no argument");
    return FullPrecisionSpec();
  }
  if (head == "1bit" || head == "1bitsgd") {
    if (!arg.empty()) {
      return InvalidArgumentError(
          "stock 1bitSGD has no bucket size; use 1bit*:<bucket>");
    }
    return OneBitSgdSpec();
  }
  if (head == "1bit*" || head == "1bitsgd*") {
    if (arg.empty()) return OneBitSgdReshapedSpec();
    char* end = nullptr;
    const long bucket = std::strtol(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || bucket <= 0) {
      return InvalidArgumentError(StrCat("bad bucket size: ", arg));
    }
    return OneBitSgdReshapedSpec(bucket);
  }
  if (head.size() >= 3 && head[0] == 'a' && head[1] == 'q') {
    char* end = nullptr;
    const long bits = std::strtol(head.c_str() + 2, &end, 10);
    if (end == nullptr || *end != '\0' || bits < 2 || bits > 16) {
      return InvalidArgumentError(StrCat("bad AdaptiveQSGD bits: ", head));
    }
    CodecSpec spec = AdaptiveQsgdSpec(static_cast<int>(bits));
    if (!arg.empty()) {
      const long bucket = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || bucket <= 0) {
        return InvalidArgumentError(StrCat("bad bucket size: ", arg));
      }
      spec.bucket_size = bucket;
    }
    return spec;
  }
  if (head.size() >= 2 && head[0] == 'q') {
    char* end = nullptr;
    const long bits = std::strtol(head.c_str() + 1, &end, 10);
    if (end == nullptr || *end != '\0' || bits < 2 || bits > 16) {
      return InvalidArgumentError(StrCat("bad QSGD bits: ", head));
    }
    CodecSpec spec = QsgdSpec(static_cast<int>(bits));
    if (!arg.empty()) {
      const long bucket = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || bucket <= 0) {
        return InvalidArgumentError(StrCat("bad bucket size: ", arg));
      }
      spec.bucket_size = bucket;
    }
    return spec;
  }
  if (head == "topk") {
    if (arg.empty()) return InvalidArgumentError("topk needs a density");
    char* end = nullptr;
    const double density = std::strtod(arg.c_str(), &end);
    if (end == nullptr || *end != '\0' || density <= 0.0 || density > 1.0) {
      return InvalidArgumentError(StrCat("bad TopK density: ", arg));
    }
    return TopKSpec(density);
  }
  return InvalidArgumentError(StrCat("unrecognized codec: ", text));
}

StatusOr<std::unique_ptr<GradientCodec>> CreateCodec(const CodecSpec& spec) {
  return spec.Create();
}

StatusOr<CodecSpec> ParseCodecSpec(const std::string& text) {
  return CodecSpec::Parse(text);
}

namespace codec_internal {

CodecObsScope::~CodecObsScope() {
  if (!active_) return;
  obs::Observe(encode_ ? "quant/encode_seconds" : "quant/decode_seconds",
               obs::MonotonicSeconds() - start_);
  obs::Count(StrCat("quant/", codec_,
                    encode_ ? "/encode_calls" : "/decode_calls"));
  if (encoded_ != nullptr) {
    obs::Count("quant/encode_bytes", static_cast<int64_t>(encoded_->size()));
  }
}

void SealWireBlob(uint8_t* blob, int64_t payload_bytes) {
  const uint32_t hash = Fnv1a32(blob, payload_bytes);
  blob[payload_bytes + 0] = static_cast<uint8_t>(hash & 0xffu);
  blob[payload_bytes + 1] = static_cast<uint8_t>((hash >> 8) & 0xffu);
  blob[payload_bytes + 2] = static_cast<uint8_t>((hash >> 16) & 0xffu);
  blob[payload_bytes + 3] = static_cast<uint8_t>((hash >> 24) & 0xffu);
}

Status VerifyWireBlob(std::string_view codec, const uint8_t* bytes,
                      int64_t num_bytes, int64_t expected_bytes) {
  if (num_bytes != expected_bytes) {
    if (obs::MetricsEnabled()) obs::Count("comm/checksum_failures");
    return DataLossError(StrCat(codec, ": encoded blob is ", num_bytes,
                                " bytes, expected ", expected_bytes));
  }
  const int64_t payload_bytes = num_bytes - kWireChecksumBytes;
  const uint32_t expected_hash =
      static_cast<uint32_t>(bytes[payload_bytes + 0]) |
      (static_cast<uint32_t>(bytes[payload_bytes + 1]) << 8) |
      (static_cast<uint32_t>(bytes[payload_bytes + 2]) << 16) |
      (static_cast<uint32_t>(bytes[payload_bytes + 3]) << 24);
  const uint32_t actual_hash = Fnv1a32(bytes, payload_bytes);
  if (actual_hash != expected_hash) {
    if (obs::MetricsEnabled()) obs::Count("comm/checksum_failures");
    return DataLossError(StrCat(codec, ": wire checksum mismatch"));
  }
  return OkStatus();
}

void AppendFloats(const float* values, int64_t count,
                  std::vector<uint8_t>* out) {
  const size_t offset = out->size();
  out->resize(offset + static_cast<size_t>(count) * sizeof(float));
  std::memcpy(out->data() + offset, values,
              static_cast<size_t>(count) * sizeof(float));
}

void AppendWords(const uint32_t* words, int64_t count,
                 std::vector<uint8_t>* out) {
  const size_t offset = out->size();
  out->resize(offset + static_cast<size_t>(count) * sizeof(uint32_t));
  std::memcpy(out->data() + offset, words,
              static_cast<size_t>(count) * sizeof(uint32_t));
}

const float* FloatsAt(const uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<const float*>(bytes + offset_bytes);
}

const uint32_t* WordsAt(const uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<const uint32_t*>(bytes + offset_bytes);
}

float* MutableFloatsAt(uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<float*>(bytes + offset_bytes);
}

uint32_t* MutableWordsAt(uint8_t* bytes, int64_t offset_bytes) {
  return reinterpret_cast<uint32_t*>(bytes + offset_bytes);
}

}  // namespace codec_internal
}  // namespace lpsgd
