// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_NUQSGD_H_
#define LPSGD_QUANT_NUQSGD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// NUQSGD (Ramezani-Kebrya et al., JMLR 2021): QSGD's skeleton with
// nonuniformly spaced quantization levels. Normalized magnitudes are
// stochastically rounded to the exponential grid
//   l_0 = 0,  l_j = 2^(j - s)  for j = 1..s,  s = 2^(bits-1) - 1,
// which matches the empirical distribution of normalized gradient
// components (most mass near zero) far better than QSGD's uniform grid and
// carries a strictly tighter variance bound at the same bit budget.
// Buckets are scaled by their 2-norm, the norm the NUQSGD analysis
// assumes.
//
// Wire format: identical layout to QSGD sign-magnitude — one fp32 scale
// per bucket, then `bits`-bit fields (1 sign bit + (bits-1) level-index
// bits) packed into 32-bit words, then the trailing integrity word. Only
// the meaning of the level index differs.
class NuqsgdCodec : public GradientCodec {
 public:
  NuqsgdCodec(int bits, int64_t bucket_size, uint64_t seed);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int bits() const { return bits_; }
  int64_t bucket_size() const { return bucket_size_; }

 private:
  int bits_;
  int64_t bucket_size_;
  uint64_t seed_;
  uint32_t level_count_;  // s: number of nonzero levels
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_NUQSGD_H_
