// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_FULL_PRECISION_H_
#define LPSGD_QUANT_FULL_PRECISION_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// Identity codec: 32-bit floats on the wire. The full-precision baseline
// of every experiment.
class FullPrecisionCodec : public GradientCodec {
 public:
  std::string Name() const override { return "32bit"; }
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_FULL_PRECISION_H_
