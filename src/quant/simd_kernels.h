// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Runtime-dispatched codec kernels: the fused bucket quantize/dequantize
// hot loops of the codec family, selectable per ISA (base/simd/simd.h).
//
// The contract every table entry must satisfy: for identical arguments,
// every ISA produces the identical wire bytes (through BitWriter), decoded
// floats, and residuals as the scalar reference — bit for bit. That holds
// because the per-element math is lane-independent IEEE arithmetic (div,
// mul, min/clamp selects, truncating casts) plus the counter-based hash,
// all of which are deterministic per element; the only order-sensitive
// pieces of the codecs (the sequential double L2 sums and the 1bitSGD chunk
// averages) are NOT kernel slots and stay scalar in every dispatch mode.
//
// The per-element helpers below are the single definition of the math: the
// scalar kernels are loops over them (moved verbatim from the codec TUs),
// and the vector kernels use them for their head/tail elements, so scalar
// and SIMD agree on the ragged edges by construction.
#ifndef LPSGD_QUANT_SIMD_KERNELS_H_
#define LPSGD_QUANT_SIMD_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "base/bit_packing.h"
#include "base/rng.h"
#include "base/simd/simd.h"
#include "base/thread_annotations.h"

namespace lpsgd {
namespace quant_simd {

// One bucket's worth of quantize work. `begin`/`end` are flat element
// indices: the stochastic-rounding stream is addressed by flat index, so a
// kernel invocation is position-dependent but history-free.
struct QuantizeArgs {
  const float* values = nullptr;  // gradient (QSGD/NUQ/TernGrad) or
                                  // error-corrected values (ECQ)
  int64_t begin = 0;              // [begin, end) flat range
  int64_t end = 0;
  double scale = 0.0;             // bucket scale; caller handles scale == 0
  uint64_t stream_seed = 0;       // CounterRng::stream_seed()
  int bits = 0;                   // wire field width
  uint32_t level_count = 0;       // s (magnitude levels / endpoints)
  BitWriter* writer = nullptr;    // positioned at the bucket's first field
  const double* magnitudes = nullptr;  // ECQ: dequant table (m / s);
                                       // NUQSGD: exponential level table
  float* error = nullptr;         // ECQ residual out; null = no feedback
  double threshold = 0.0;         // TernGrad clip threshold
};

// One bucket's worth of dequantize work.
struct DequantizeArgs {
  BitReader* reader = nullptr;    // positioned at the bucket's first field
  int64_t begin = 0;
  int64_t end = 0;
  double scale = 0.0;
  int bits = 0;
  uint32_t magnitude_mask = 0;    // sign-magnitude: low-bits mask
  const double* magnitudes = nullptr;  // SM magnitude / NUQ level table
  double s = 0.0;                 // symmetric: level_count as double
  float* out = nullptr;
};

// ---------------------------------------------------------------------------
// Per-element golden helpers. Each is the exact expression the codec TU ran
// before kernel extraction; do not "simplify" them — every select and cast
// is part of the pinned wire format.

// CounterRng::UniformAt for a pre-mixed stream seed.
LPSGD_HOT_PATH
inline double StreamUniform(uint64_t stream_seed, uint64_t index) {
  return static_cast<double>(HashCounter(stream_seed, index) >> 11) *
         0x1.0p-53;
}

// QSGD sign-magnitude field for one element (Equation 1 rounding).
LPSGD_HOT_PATH
inline uint32_t QsgdFieldSm(float g, double scale, double s,
                            uint32_t level_count, int bits, double u) {
  const double a = std::min(1.0, std::abs(static_cast<double>(g)) / scale);
  uint32_t level = static_cast<uint32_t>(a * s);
  const double frac = a * s - level;
  if (u < frac && level < level_count) ++level;
  if (level > level_count) level = level_count;
  const uint32_t sign = g < 0.0f ? 1u : 0u;
  return (sign << (bits - 1)) | level;
}

// QSGD symmetric-endpoint field over [-scale, +scale].
LPSGD_HOT_PATH
inline uint32_t QsgdFieldSym(float g, double scale, double s,
                             uint32_t level_count, double u) {
  const double a = std::clamp(
      (static_cast<double>(g) + scale) / (2.0 * scale), 0.0, 1.0);
  uint32_t level = static_cast<uint32_t>(a * s);
  const double frac = a * s - level;
  if (u < frac && level < level_count) ++level;
  if (level > level_count) level = level_count;
  return level;
}

// ECQ-SGD field + residual for one error-corrected element. `magnitudes`
// is the m / s dequant table; `residual` may be null (no error feedback).
LPSGD_HOT_PATH
inline uint32_t EcqFieldSm(float corrected, double scale, double s,
                           uint32_t level_count, int bits, double u,
                           const double* magnitudes, float* residual) {
  const double v = corrected;
  const double a = std::min(1.0, std::abs(v) / scale);
  uint32_t level = static_cast<uint32_t>(a * s);
  const double frac = a * s - level;
  if (u < frac && level < level_count) ++level;
  if (level > level_count) level = level_count;
  const uint32_t sign = v < 0.0 ? 1u : 0u;
  if (residual != nullptr) {
    const double magnitude = magnitudes[level] * scale;
    const float dequantized =
        static_cast<float>(sign ? -magnitude : magnitude);
    *residual = static_cast<float>(v) - dequantized;
  }
  return (sign << (bits - 1)) | level;
}

// NUQSGD field on the exponential level grid (levels[j] = 2^(j - s)).
LPSGD_HOT_PATH
inline uint32_t NuqField(float g, double scale, const double* levels,
                         int s_int, int bits, double u) {
  const double a = std::min(1.0, std::abs(static_cast<double>(g)) / scale);
  uint32_t level = 0;
  if (a > 0.0) {
    int exponent = 0;
    (void)std::frexp(a, &exponent);
    const int j = std::clamp(exponent - 1 + s_int, 0, s_int - 1);
    const double lo = levels[j];
    const double hi = levels[j + 1];
    const double p = (a - lo) / (hi - lo);
    level = static_cast<uint32_t>(j);
    if (u < p) ++level;
  }
  const uint32_t sign = g < 0.0f ? 1u : 0u;
  return (sign << (bits - 1)) | level;
}

// TernGrad 2-bit field: sign bit + Bernoulli magnitude bit.
LPSGD_HOT_PATH
inline uint32_t TernGradField(float g, double scale, double threshold,
                              double u) {
  const double a =
      std::min(std::abs(static_cast<double>(g)), threshold) / scale;
  const uint32_t magnitude = u < a ? 1u : 0u;
  const uint32_t sign = g < 0.0f ? 1u : 0u;
  return (sign << 1) | magnitude;
}

// Sign-magnitude dequantize for one field (QSGD, ECQ, and — with the level
// table as `magnitudes` — NUQSGD).
LPSGD_HOT_PATH
inline float DequantizeSm(uint32_t field, const double* magnitudes,
                          double scale, int bits, uint32_t magnitude_mask) {
  const bool negative = (field >> (bits - 1)) & 1u;
  const double magnitude = magnitudes[field & magnitude_mask] * scale;
  return static_cast<float>(negative ? -magnitude : magnitude);
}

// Symmetric-endpoint dequantize for one field.
LPSGD_HOT_PATH
inline float DequantizeSym(uint32_t field, double scale, double two_scale,
                           double s) {
  return static_cast<float>(-scale + two_scale * field / s);
}

// TernGrad dequantize for one field.
LPSGD_HOT_PATH
inline float TernGradValue(uint32_t field, float scale) {
  const float magnitude = (field & 1u) ? scale : 0.0f;
  return (field >> 1) & 1u ? -magnitude : magnitude;
}

// One 1bitSGD* quantize step: OR the sign bit of grad[i] + error[i] into
// the flat bitmap and refresh the carried error (Algorithm 2, line 4).
LPSGD_HOT_PATH
inline void OneBitStep(const float* grad, float* error, int64_t i,
                       float avg_pos, float avg_neg, uint32_t* bits) {
  const float v = grad[i] + (error != nullptr ? error[i] : 0.0f);
  const bool positive = v >= 0.0f;
  if (positive) {
    bits[i >> 5] |= 1u << (i & 31);
  }
  if (error != nullptr) {
    error[i] = v - (positive ? avg_pos : avg_neg);
  }
}

// Packs word_count * per_word staged fields into whole 32-bit words in the
// exact BitWriter::Put() layout (little-endian fields, top padding zero).
// The vector kernels quantize into a field tile and bulk-pack it here once
// the stream is word-aligned.
LPSGD_HOT_PATH
inline void PackFieldWords(const uint32_t* fields, int64_t word_count,
                           int per_word, int bits, uint32_t* words) {
  int64_t f = 0;
  for (int64_t w = 0; w < word_count; ++w) {
    uint32_t word = 0;
    int shift = 0;
    for (int j = 0; j < per_word; ++j) {
      word |= fields[f++] << shift;
      shift += bits;
    }
    words[w] = word;
  }
}

// Inverse of PackFieldWords: stages word_count whole words as individual
// fields for the vector dequantize tiles.
LPSGD_HOT_PATH
inline void UnpackFieldWords(const uint32_t* words, int64_t word_count,
                             int per_word, int bits, uint32_t* fields) {
  const uint32_t field_mask =
      bits < 32 ? (1u << bits) - 1u : 0xffffffffu;
  int64_t f = 0;
  for (int64_t w = 0; w < word_count; ++w) {
    const uint32_t word = words[w];
    int shift = 0;
    for (int j = 0; j < per_word; ++j) {
      fields[f++] = (word >> shift) & field_mask;
      shift += bits;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch table. Slots without a vector implementation on some ISA hold
// the scalar reference, so callers never branch on ISA themselves.
struct CodecKernels {
  void (*qsgd_quantize_sm)(const QuantizeArgs& args);
  void (*qsgd_quantize_sym)(const QuantizeArgs& args);
  // Shared by QSGD-SM, ECQ, and NUQSGD decode (the table differs).
  void (*dequantize_sm)(const DequantizeArgs& args);
  void (*dequantize_sym)(const DequantizeArgs& args);
  void (*ecq_quantize)(const QuantizeArgs& args);
  void (*nuq_quantize)(const QuantizeArgs& args);
  void (*terngrad_quantize)(const QuantizeArgs& args);
  void (*terngrad_dequantize)(const DequantizeArgs& args);
  // 1bitSGD* flat-bitmap quantize: OR sign bits of grad[i] + error[i] into
  // `bits` (pre-zeroed; buckets may straddle words) and refresh the error.
  // `error` is null when feedback is off.
  void (*one_bit_quantize)(const float* grad, float* error, int64_t begin,
                           int64_t end, float avg_pos, float avg_neg,
                           uint32_t* bits);
  void (*one_bit_dequantize)(const uint32_t* bits, int64_t begin,
                             int64_t end, float avg_pos, float avg_neg,
                             float* out);
  // v = grad + carried error staging (TopK, ECQ). `error` may be null:
  // the scalar reference adds literal 0.0f then (which flushes -0.0f to
  // +0.0f — wire-visible in TopK, so a memcpy would NOT be equivalent).
  void (*stage_corrected)(const float* grad, const float* error, float* out,
                          int64_t n);
};

// Kernel table for `isa`; unsupported or not-compiled-in ISAs resolve to
// the scalar table.
const CodecKernels& CodecKernelsForIsa(SimdIsa isa);

inline const CodecKernels& ActiveCodecKernels() {
  return CodecKernelsForIsa(ActiveSimdIsa());
}

// Vector kernel declarations, defined in the per-codec *_simd.cc TUs (the
// only quant TUs allowed to include intrinsics headers — see tools/lint).
#if defined(__x86_64__)
namespace avx2 {
void QsgdQuantizeSm(const QuantizeArgs& args);    // qsgd_simd.cc
void QsgdQuantizeSym(const QuantizeArgs& args);   // qsgd_simd.cc
void DequantizeSm(const DequantizeArgs& args);    // qsgd_simd.cc
void DequantizeSym(const DequantizeArgs& args);   // qsgd_simd.cc
void EcqQuantize(const QuantizeArgs& args);       // ecq_sgd_simd.cc
void NuqQuantize(const QuantizeArgs& args);       // nuqsgd_simd.cc
void TernGradQuantize(const QuantizeArgs& args);  // terngrad_simd.cc
void TernGradDequantize(const DequantizeArgs& args);
void OneBitQuantize(const float* grad, float* error, int64_t begin,
                    int64_t end, float avg_pos, float avg_neg,
                    uint32_t* bits);              // one_bit_simd.cc
void OneBitDequantize(const uint32_t* bits, int64_t begin, int64_t end,
                      float avg_pos, float avg_neg, float* out);
void StageCorrected(const float* grad, const float* error, float* out,
                    int64_t n);                   // topk_simd.cc
}  // namespace avx2
#endif
#if defined(__aarch64__)
namespace neon {
void TernGradDequantize(const DequantizeArgs& args);  // terngrad_simd.cc
void OneBitDequantize(const uint32_t* bits, int64_t begin, int64_t end,
                      float avg_pos, float avg_neg, float* out);
void StageCorrected(const float* grad, const float* error, float* out,
                    int64_t n);                       // topk_simd.cc
}  // namespace neon
#endif

}  // namespace quant_simd
}  // namespace lpsgd

#endif  // LPSGD_QUANT_SIMD_KERNELS_H_
