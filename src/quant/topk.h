// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_TOPK_H_
#define LPSGD_QUANT_TOPK_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// Top-K gradient sparsification (Aji & Heafield, EMNLP 2017), the
// alternative compression strategy the paper evaluates in Section 7: only
// the `density` fraction of components with the largest magnitudes are
// transmitted (as index/value pairs); the rest accumulate locally in an
// error-feedback buffer until they grow large enough to be sent.
//
// Wire format: one uint32 count, then count x (uint32 index, fp32 value).
// The 8-byte-per-kept-component cost is the overhead the paper points to:
// at the >10% densities it observed Inception-class nets need, the traffic
// reduction over fp32 is less than 2x — far from QSGD's 8x at 4 bits.
class TopKCodec : public GradientCodec {
 public:
  // `density` in (0, 1]: fraction of components transmitted per matrix
  // (at least one).
  explicit TopKCodec(double density, bool error_feedback = true);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  bool UsesErrorFeedback() const override { return error_feedback_; }
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  double density() const { return density_; }

  // Number of components kept for an n-element gradient (>= 1).
  int64_t KeptCount(int64_t n) const;

 private:
  double density_;
  bool error_feedback_;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_TOPK_H_
