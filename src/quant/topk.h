// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_TOPK_H_
#define LPSGD_QUANT_TOPK_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// Top-K gradient sparsification (Aji & Heafield, EMNLP 2017), the
// alternative compression strategy the paper evaluates in Section 7: only
// the `density` fraction of components with the largest magnitudes are
// transmitted (as index/value pairs); the rest accumulate locally in an
// error-feedback buffer until they grow large enough to be sent.
//
// Wire format: one uint32 count, then the kept indices bit-packed at
// IndexBitWidth(n) bits each in strictly increasing order, then count fp32
// values in index order. Packing the indices (instead of a raw uint32
// each) trims the per-component overhead, but the cost structure the paper
// points to stands: at the >10% densities it observed Inception-class nets
// need, the traffic reduction over fp32 is well short of QSGD's 8x at
// 4 bits.
//
// TopK is the repo's sparse codec: SparseCount() is nonzero and
// DecodeSparse() exposes the (index, value) runs directly, so aggregators
// can scatter-add k components per rank instead of densifying n.
class TopKCodec : public GradientCodec {
 public:
  // `density` in (0, 1]: fraction of components transmitted per matrix
  // (at least one).
  explicit TopKCodec(double density, bool error_feedback = true);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  bool UsesErrorFeedback() const override { return error_feedback_; }
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;
  int64_t SparseCount(const Shape& shape) const override;
  Status DecodeSparse(const uint8_t* bytes, int64_t num_bytes,
                      const Shape& shape, CodecWorkspace* workspace,
                      uint32_t* indices, float* values) const override;

  double density() const { return density_; }

  // Number of components kept for an n-element gradient (>= 1).
  int64_t KeptCount(int64_t n) const;

 private:
  double density_;
  bool error_feedback_;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_TOPK_H_
