// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/one_bit_sgd.h"

#include <algorithm>
#include <cstring>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

// Computes avg+ / avg- over `count` values read through `get(i)`.
//
// Shared by both 1bitSGD variants; only the chunking (columns vs buckets)
// differs. The error-corrected value v = grad + error is recomputed by the
// callers' `get` in both the averaging and the quantization pass — the
// identical float addition each time — instead of staging it in an n-float
// buffer, so encoding allocates nothing.
template <typename GetFn>
void ChunkAverages(int64_t count, const GetFn& get, float* avg_pos,
                   float* avg_neg) {
  double sum_pos = 0.0, sum_neg = 0.0;
  int64_t n_pos = 0, n_neg = 0;
  for (int64_t i = 0; i < count; ++i) {
    const float v = get(i);
    if (v >= 0.0f) {
      sum_pos += v;
      ++n_pos;
    } else {
      sum_neg += v;
      ++n_neg;
    }
  }
  *avg_pos = n_pos > 0 ? static_cast<float>(sum_pos / n_pos) : 0.0f;
  *avg_neg = n_neg > 0 ? static_cast<float>(sum_neg / n_neg) : 0.0f;
}

}  // namespace

int64_t OneBitSgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t rows = shape.rows();
  const int64_t cols = shape.cols();
  const int64_t words_per_col = (rows + 31) / 32;
  return cols * (2 * static_cast<int64_t>(sizeof(float)) +
                 words_per_col * static_cast<int64_t>(sizeof(uint32_t))) +
         codec_internal::kWireChecksumBytes;
}

int64_t OneBitSgdCodec::NumChunks(const Shape& shape) const {
  return shape.cols();
}

LPSGD_HOT_PATH
void OneBitSgdCodec::Encode(const float* grad, const Shape& shape,
                            uint64_t /*stochastic_tag*/,
                            std::vector<float>* error,
                            CodecWorkspace* workspace,
                            std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("one_bit_sgd", /*encode=*/true,
                                          out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t rows = shape.rows();
  const int64_t cols = shape.cols();
  const int64_t n = rows * cols;
  CHECK(!error_feedback_ || error != nullptr);
  if (error_feedback_) {
    CHECK_EQ(static_cast<int64_t>(error->size()), n);
  }

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);  // 2 per column
  const int64_t words_per_col = (rows + 31) / 32;
  uint32_t* bits =
      MutableWordsAt(blob, 2 * cols * static_cast<int64_t>(sizeof(float)));
  std::memset(bits, 0,
              static_cast<size_t>(cols * words_per_col) * sizeof(uint32_t));

  // v = grad + carried error (Algorithm 2, line 1), recomputed per pass.
  const auto corrected = [&](int64_t flat) {
    return grad[flat] +
           (error_feedback_ ? (*error)[static_cast<size_t>(flat)] : 0.0f);
  };

  for (int64_t c = 0; c < cols; ++c) {
    // Column c: elements at flat index r * cols + c.
    float avg_pos = 0.0f, avg_neg = 0.0f;
    ChunkAverages(
        rows, [&](int64_t r) { return corrected(r * cols + c); }, &avg_pos,
        &avg_neg);
    scales[2 * c] = avg_pos;
    scales[2 * c + 1] = avg_neg;
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t flat = r * cols + c;
      const float v = corrected(flat);
      const bool positive = v >= 0.0f;
      if (positive) {
        bits[c * words_per_col + r / 32] |= 1u << (r & 31);
      }
      if (error_feedback_) {
        // Algorithm 2, line 4.
        (*error)[static_cast<size_t>(flat)] =
            v - (positive ? avg_pos : avg_neg);
      }
    }
  }
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status OneBitSgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                              const Shape& shape,
                              CodecWorkspace* workspace,
                              float* out) const {
  codec_internal::CodecObsScope obs_scope("one_bit_sgd", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t rows = shape.rows();
  const int64_t cols = shape.cols();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "one_bit_sgd", bytes, num_bytes, EncodedSizeBytes(shape)));
  const float* scales = FloatsAt(bytes, 0);
  const int64_t words_per_col = (rows + 31) / 32;
  const uint32_t* bits =
      WordsAt(bytes, 2 * cols * static_cast<int64_t>(sizeof(float)));

  for (int64_t c = 0; c < cols; ++c) {
    const float avg_pos = scales[2 * c];
    const float avg_neg = scales[2 * c + 1];
    const uint32_t* col_bits = bits + c * words_per_col;
    for (int64_t r = 0; r < rows; ++r) {
      const bool positive = (col_bits[r / 32] >> (r & 31)) & 1u;
      out[r * cols + c] = positive ? avg_pos : avg_neg;
    }
  }
  return OkStatus();
}

OneBitSgdReshapedCodec::OneBitSgdReshapedCodec(int64_t bucket_size,
                                               bool error_feedback)
    : bucket_size_(bucket_size), error_feedback_(error_feedback) {
  CHECK_GT(bucket_size, 0);
}

std::string OneBitSgdReshapedCodec::Name() const {
  return StrCat("1bitSGD* (b=", bucket_size_, ")");
}

int64_t OneBitSgdReshapedCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const int64_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  return buckets * 2 * static_cast<int64_t>(sizeof(float)) +
         ((n + 31) / 32) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

int64_t OneBitSgdReshapedCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

LPSGD_HOT_PATH
void OneBitSgdReshapedCodec::Encode(const float* grad, const Shape& shape,
                                    uint64_t /*stochastic_tag*/,
                                    std::vector<float>* error,
                                    CodecWorkspace* workspace,
                                    std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("one_bit_sgd_reshaped",
                                          /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  CHECK(!error_feedback_ || error != nullptr);
  if (error_feedback_) {
    CHECK_EQ(static_cast<int64_t>(error->size()), n);
  }

  const int64_t buckets = NumChunks(shape);
  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);  // 2 per bucket
  uint32_t* bits = MutableWordsAt(
      blob, 2 * buckets * static_cast<int64_t>(sizeof(float)));
  // Buckets don't align with word boundaries, so zero the whole sign
  // bitmap up front and OR bits in below.
  std::memset(bits, 0, static_cast<size_t>((n + 31) / 32) * sizeof(uint32_t));

  const auto corrected = [&](int64_t i) {
    return grad[i] +
           (error_feedback_ ? (*error)[static_cast<size_t>(i)] : 0.0f);
  };

  // Quantize + error refresh (Algorithm 2, line 4) via the runtime-
  // dispatched kernel table; the averaging pass must run first per bucket
  // because the kernel overwrites the carried error in place.
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  float* error_data = error_feedback_ ? error->data() : nullptr;
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);
    float avg_pos = 0.0f, avg_neg = 0.0f;
    ChunkAverages(
        end - begin, [&](int64_t i) { return corrected(begin + i); },
        &avg_pos, &avg_neg);
    scales[2 * b] = avg_pos;
    scales[2 * b + 1] = avg_neg;
    kernels.one_bit_quantize(grad, error_data, begin, end, avg_pos, avg_neg,
                             bits);
  }
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status OneBitSgdReshapedCodec::Decode(const uint8_t* bytes,
                                      int64_t num_bytes, const Shape& shape,
                                      CodecWorkspace* workspace,
                                      float* out) const {
  codec_internal::CodecObsScope obs_scope("one_bit_sgd_reshaped",
                                          /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "one_bit_sgd_reshaped", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  const uint32_t* bits =
      WordsAt(bytes, 2 * buckets * static_cast<int64_t>(sizeof(float)));

  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);
    kernels.one_bit_dequantize(bits, begin, end, scales[2 * b],
                               scales[2 * b + 1], out);
  }
  return OkStatus();
}

CodecSpec OneBitSgdSpec() {
  CodecSpec spec;
  spec.kind = CodecKind::kOneBitSgd;
  return spec;
}

CodecSpec OneBitSgdReshapedSpec(int64_t bucket_size) {
  CodecSpec spec;
  spec.kind = CodecKind::kOneBitSgdReshaped;
  spec.bucket_size = bucket_size;
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkOneBitSgdCodecFamilies() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily OneBitSgdFamily() {
  CodecFamily family;
  family.kind = CodecKind::kOneBitSgd;
  family.name = "1bit";
  family.help = "stock per-column 1bitSGD (alias: 1bitsgd)";
  family.matches = [](const std::string& head) {
    return head == "1bit" || head == "1bitsgd";
  };
  family.parse = [](const std::string& /*head*/,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    if (!params->TakePositional().empty() ||
        params->Take("bucket") != nullptr) {
      return InvalidArgumentError(
          "stock 1bitSGD has no bucket size; use 1bit*:<bucket>");
    }
    return OneBitSgdSpec();
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    return std::unique_ptr<GradientCodec>(
        new OneBitSgdCodec(spec.error_feedback));
  };
  family.label = [](const CodecSpec& spec) {
    return std::string(spec.error_feedback ? "1bitSGD" : "1bitSGD (no EF)");
  };
  family.short_label = [](const CodecSpec& /*spec*/) {
    return std::string("1b");
  };
  return family;
}

CodecFamily OneBitSgdReshapedFamily() {
  CodecFamily family;
  family.kind = CodecKind::kOneBitSgdReshaped;
  family.name = "1bit*";
  family.help = "reshaped 1bitSGD, optional :<bucket> (default 64)";
  family.keys = {"bucket"};
  family.matches = [](const std::string& head) {
    return head == "1bit*" || head == "1bitsgd*";
  };
  family.parse = [](const std::string& /*head*/,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    CodecSpec spec = OneBitSgdReshapedSpec();
    LPSGD_ASSIGN_OR_RETURN(const std::string bucket_text,
                           TakeValueOrKey(params, "bucket"));
    if (!bucket_text.empty()) {
      LPSGD_ASSIGN_OR_RETURN(const int64_t bucket,
                             ParseInt64Param(bucket_text, "bucket size"));
      if (bucket <= 0) {
        return InvalidArgumentError(
            StrCat("bad bucket size: ", bucket_text));
      }
      spec.bucket_size = bucket;
    }
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bucket_size <= 0) {
      return InvalidArgumentError(
          StrCat("1bitSGD* bucket size must be positive, got ",
                 spec.bucket_size));
    }
    return std::unique_ptr<GradientCodec>(
        new OneBitSgdReshapedCodec(spec.bucket_size, spec.error_feedback));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat(spec.error_feedback ? "1bitSGD*" : "1bitSGD* (no EF)",
                  " (b=", spec.bucket_size, ")");
  };
  family.short_label = [](const CodecSpec& /*spec*/) {
    return std::string("1b*");
  };
  return family;
}

const CodecRegistrar stock_registrar(OneBitSgdFamily());
const CodecRegistrar reshaped_registrar(OneBitSgdReshapedFamily());

}  // namespace
}  // namespace lpsgd
