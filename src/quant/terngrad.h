// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_TERNGRAD_H_
#define LPSGD_QUANT_TERNGRAD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// TernGrad (Wen et al., NeurIPS 2017): each gradient component is
// stochastically rounded to one of three values {-s, 0, +s}, where s is
// the max-magnitude scalar of its chunk. The rounding is unbiased:
// P(±s) = |g| / s, so E[Q(g)] = g. With bucket_size <= 0 the whole matrix
// shares one scalar (the paper's layer-wise scaling); a positive bucket
// size scales runs of consecutive elements independently, the same
// variance-control knob QSGD's bucketing provides.
//
// Gradient clipping (the paper's Section 5 accuracy fix): with clip > 0,
// magnitudes are clamped at clip * sigma before scaling, where sigma is
// the chunk's RMS. Clipping caps the scalar, so the rare huge component no
// longer starves every other component's signal.
//
// Wire format: one fp32 scalar per chunk, then a 2-bit sign-magnitude
// field per element (1 sign bit + 1 magnitude bit) packed into 32-bit
// words, then the trailing integrity word.
class TernGradCodec : public GradientCodec {
 public:
  // `bucket_size` <= 0 means one scalar per matrix; `clip` <= 0 disables
  // clipping.
  TernGradCodec(int64_t bucket_size, double clip, uint64_t seed);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int64_t bucket_size() const { return bucket_size_; }
  double clip() const { return clip_; }

 private:
  // Elements covered by chunk `b` of an n-element gradient.
  int64_t ChunkLength(int64_t n) const;

  int64_t bucket_size_;
  double clip_;
  uint64_t seed_;
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_TERNGRAD_H_
