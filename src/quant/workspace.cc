// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/workspace.h"

#include "obs/metrics.h"

namespace lpsgd {
namespace quant_internal {

void RecordWorkspaceGrowth(int64_t bytes) {
  if (!obs::MetricsEnabled()) return;
  obs::Count("quant/workspace/grow_events");
  obs::Count("quant/workspace/grown_bytes", bytes);
}

}  // namespace quant_internal
}  // namespace lpsgd
