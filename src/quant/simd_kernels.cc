// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Scalar reference kernels and the ISA dispatch tables. The loop bodies
// here are the codec hot loops moved verbatim out of qsgd.cc / ecq_sgd.cc /
// nuqsgd.cc / terngrad.cc / one_bit_sgd.cc (via the shared per-element
// helpers in simd_kernels.h): they define the wire format, and every
// vector kernel is property-tested bit-identical against them.
#include "quant/simd_kernels.h"

namespace lpsgd {
namespace quant_simd {
namespace {

LPSGD_HOT_PATH
void ScalarQsgdQuantizeSm(const QuantizeArgs& args) {
  const double s = static_cast<double>(args.level_count);
  for (int64_t i = args.begin; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    args.writer->Put(QsgdFieldSm(args.values[i], args.scale, s,
                                 args.level_count, args.bits, u));
  }
}

LPSGD_HOT_PATH
void ScalarQsgdQuantizeSym(const QuantizeArgs& args) {
  const double s = static_cast<double>(args.level_count);
  for (int64_t i = args.begin; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    args.writer->Put(
        QsgdFieldSym(args.values[i], args.scale, s, args.level_count, u));
  }
}

LPSGD_HOT_PATH
void ScalarDequantizeSm(const DequantizeArgs& args) {
  for (int64_t i = args.begin; i < args.end; ++i) {
    args.out[i] = DequantizeSm(args.reader->Next(), args.magnitudes,
                               args.scale, args.bits, args.magnitude_mask);
  }
}

LPSGD_HOT_PATH
void ScalarDequantizeSym(const DequantizeArgs& args) {
  const double two_scale = 2.0 * args.scale;
  for (int64_t i = args.begin; i < args.end; ++i) {
    args.out[i] =
        DequantizeSym(args.reader->Next(), args.scale, two_scale, args.s);
  }
}

LPSGD_HOT_PATH
void ScalarEcqQuantize(const QuantizeArgs& args) {
  const double s = static_cast<double>(args.level_count);
  for (int64_t i = args.begin; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    args.writer->Put(EcqFieldSm(
        args.values[i], args.scale, s, args.level_count, args.bits, u,
        args.magnitudes, args.error != nullptr ? args.error + i : nullptr));
  }
}

LPSGD_HOT_PATH
void ScalarNuqQuantize(const QuantizeArgs& args) {
  const int s_int = static_cast<int>(args.level_count);
  for (int64_t i = args.begin; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    args.writer->Put(NuqField(args.values[i], args.scale, args.magnitudes,
                              s_int, args.bits, u));
  }
}

LPSGD_HOT_PATH
void ScalarTernGradQuantize(const QuantizeArgs& args) {
  for (int64_t i = args.begin; i < args.end; ++i) {
    const double u = StreamUniform(args.stream_seed, static_cast<uint64_t>(i));
    args.writer->Put(
        TernGradField(args.values[i], args.scale, args.threshold, u));
  }
}

LPSGD_HOT_PATH
void ScalarTernGradDequantize(const DequantizeArgs& args) {
  const float scale = static_cast<float>(args.scale);
  for (int64_t i = args.begin; i < args.end; ++i) {
    args.out[i] = TernGradValue(args.reader->Next(), scale);
  }
}

LPSGD_HOT_PATH
void ScalarOneBitQuantize(const float* grad, float* error, int64_t begin,
                          int64_t end, float avg_pos, float avg_neg,
                          uint32_t* bits) {
  for (int64_t i = begin; i < end; ++i) {
    OneBitStep(grad, error, i, avg_pos, avg_neg, bits);
  }
}

LPSGD_HOT_PATH
void ScalarOneBitDequantize(const uint32_t* bits, int64_t begin, int64_t end,
                            float avg_pos, float avg_neg, float* out) {
  for (int64_t i = begin; i < end; ++i) {
    out[i] = SignBitAt(bits, i) ? avg_pos : avg_neg;
  }
}

LPSGD_HOT_PATH
void ScalarStageCorrected(const float* grad, const float* error, float* out,
                          int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = grad[i] + (error != nullptr ? error[i] : 0.0f);
  }
}

}  // namespace

const CodecKernels& CodecKernelsForIsa(SimdIsa isa) {
  static const CodecKernels scalar = {
      ScalarQsgdQuantizeSm,     ScalarQsgdQuantizeSym,
      ScalarDequantizeSm,       ScalarDequantizeSym,
      ScalarEcqQuantize,        ScalarNuqQuantize,
      ScalarTernGradQuantize,   ScalarTernGradDequantize,
      ScalarOneBitQuantize,     ScalarOneBitDequantize,
      ScalarStageCorrected,
  };
#if defined(__x86_64__)
  static const CodecKernels avx2_table = {
      avx2::QsgdQuantizeSm,     avx2::QsgdQuantizeSym,
      avx2::DequantizeSm,       avx2::DequantizeSym,
      avx2::EcqQuantize,        avx2::NuqQuantize,
      avx2::TernGradQuantize,   avx2::TernGradDequantize,
      avx2::OneBitQuantize,     avx2::OneBitDequantize,
      avx2::StageCorrected,
  };
  if (isa == SimdIsa::kAvx2 && SimdIsaSupported(SimdIsa::kAvx2)) {
    return avx2_table;
  }
#endif
#if defined(__aarch64__)
  // NEON covers the table-free decode kernels and the staging map; the
  // hash-driven quantize kernels stay scalar pending a lane-exact 64-bit
  // multiply (NEON has no 64x64 lane product, and emulating one costs more
  // than the hash saves at 128-bit width).
  static const CodecKernels neon_table = {
      ScalarQsgdQuantizeSm,     ScalarQsgdQuantizeSym,
      ScalarDequantizeSm,       ScalarDequantizeSym,
      ScalarEcqQuantize,        ScalarNuqQuantize,
      ScalarTernGradQuantize,   neon::TernGradDequantize,
      ScalarOneBitQuantize,     neon::OneBitDequantize,
      neon::StageCorrected,
  };
  if (isa == SimdIsa::kNeon) return neon_table;
#endif
  (void)isa;
  return scalar;
}

}  // namespace quant_simd
}  // namespace lpsgd
