// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/adaptive_qsgd.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/thread_annotations.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

// Largest sample used for quantile estimation; matrices beyond this size
// are subsampled deterministically.
constexpr int64_t kQuantileSample = 4096;

}  // namespace

AdaptiveQsgdCodec::AdaptiveQsgdCodec(int bits, int64_t bucket_size,
                                     uint64_t seed)
    : bits_(bits), bucket_size_(bucket_size), seed_(seed) {
  CHECK_GE(bits, 2);
  CHECK_LE(bits, 16);
  CHECK_GT(bucket_size, 0);
  level_count_ = (1u << (bits_ - 1)) - 1u;
  CHECK_GE(level_count_, 1u);
}

std::string AdaptiveQsgdCodec::Name() const {
  return StrCat("AdaptiveQSGD ", bits_, "bit (b=", bucket_size_, ")");
}

int64_t AdaptiveQsgdCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

int64_t AdaptiveQsgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const BitPacker packer(bits_);
  return NumChunks(shape) * static_cast<int64_t>(sizeof(float)) +
         (level_count_ + 1) * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

namespace {

// Expected stochastic-rounding variance of the sorted `sample` under the
// level placement `levels`: for a value a in [lo, hi], the variance is
// (a - lo)(hi - a).
double PlacementVariance(const std::vector<float>& sample,
                         const std::vector<float>& levels) {
  double total = 0.0;
  size_t j = 0;
  for (float a : sample) {
    while (j + 2 < levels.size() && a > levels[j + 1]) ++j;
    const double lo = levels[j];
    const double hi = levels[j + 1];
    if (a >= lo && a <= hi) {
      total += (a - lo) * (hi - a);
    }
  }
  return total;
}

}  // namespace

void AdaptiveQsgdCodec::ComputeLevelsInto(const float* grad,
                                          const Shape& shape,
                                          const float* scales,
                                          CodecWorkspace* workspace) const {
  const int64_t n = shape.element_count();
  const uint32_t s = level_count_;
  // Start from QSGD's uniform grid; optimization below only improves it.
  std::vector<float>& levels = workspace->levels;
  quant_internal::EnsureSize(&levels, static_cast<size_t>(s) + 1);
  for (uint32_t j = 0; j <= s; ++j) {
    levels[j] = static_cast<float>(j) / static_cast<float>(s);
  }
  // {0, 1} has no interior levels; beyond ~5 bits the uniform grid is
  // already fine-grained and the cubic-cost optimization stops paying for
  // itself (consistent with the paper's "no significant improvement").
  if (s < 2 || s > 31) return;

  // Deterministic subsample of normalized magnitudes.
  std::vector<float>& sample = workspace->sample;
  sample.clear();
  sample.reserve(static_cast<size_t>(std::min(n, kQuantileSample)));
  const int64_t stride = std::max<int64_t>(1, n / kQuantileSample);
  for (int64_t i = 0; i < n; i += stride) {
    const float scale = scales[i / bucket_size_];
    if (scale > 0.0f) {
      sample.push_back(std::abs(grad[i]) / scale);
    }
  }
  if (sample.empty()) return;
  std::sort(sample.begin(), sample.end());

  // ZipML-style variance-minimizing placement: coordinate descent over the
  // interior levels. For fixed neighbors the objective restricted to one
  // level is piecewise-quadratic and unimodal, so a golden-section-style
  // ternary search finds its minimum; sweeps repeat until the gain fades.
  std::vector<float>& trial = workspace->trial;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (uint32_t j = 1; j < s; ++j) {
      double lo = levels[j - 1];
      double hi = levels[j + 1];
      // `trial` tracks `levels` except at position j, matching the fresh
      // copies the unfused code made per probe.
      trial.assign(levels.begin(), levels.end());
      for (int iter = 0; iter < 25; ++iter) {
        const double m1 = lo + (hi - lo) / 3.0;
        const double m2 = hi - (hi - lo) / 3.0;
        trial[j] = static_cast<float>(m1);
        const double f1 = PlacementVariance(sample, trial);
        trial[j] = static_cast<float>(m2);
        const double f2 = PlacementVariance(sample, trial);
        if (f1 < f2) {
          hi = m2;
        } else {
          lo = m1;
        }
      }
      const double candidate = (lo + hi) / 2.0;
      trial[j] = static_cast<float>(candidate);
      if (PlacementVariance(sample, trial) <
          PlacementVariance(sample, levels)) {
        levels[j] = static_cast<float>(candidate);
      }
    }
  }
  // Monotonicity is maintained by construction (each search is confined
  // to the neighbor interval), but enforce it defensively.
  for (uint32_t j = 1; j <= s; ++j) {
    levels[j] = std::max(levels[j], levels[j - 1]);
  }
}

std::vector<float> AdaptiveQsgdCodec::ComputeLevels(
    const float* grad, const Shape& shape,
    const std::vector<float>& scales) const {
  CodecWorkspace workspace;
  ComputeLevelsInto(grad, shape, scales.data(), &workspace);
  return std::move(workspace.levels);
}

LPSGD_HOT_PATH
void AdaptiveQsgdCodec::Encode(const float* grad, const Shape& shape,
                               uint64_t stochastic_tag,
                               std::vector<float>* /*error*/,
                               CodecWorkspace* workspace,
                               std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("adaptive_qsgd", /*encode=*/true,
                                          out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  const int64_t buckets = NumChunks(shape);
  const CounterRng stream(seed_, stochastic_tag);
  const uint32_t s = level_count_;

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);
    double max_abs = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      max_abs = std::max(max_abs, std::abs(static_cast<double>(grad[i])));
    }
    scales[b] = static_cast<float>(max_abs);
  }

  ComputeLevelsInto(grad, shape, scales, workspace);
  const std::vector<float>& levels = workspace->levels;
  std::memcpy(blob + buckets * sizeof(float), levels.data(),
              (static_cast<size_t>(s) + 1) * sizeof(float));

  BitWriter writer(
      MutableWordsAt(blob, (buckets + s + 1) *
                               static_cast<int64_t>(sizeof(float))),
      bits_);
  for (int64_t i = 0; i < n; ++i) {
    const float scale = scales[i / bucket_size_];
    if (scale == 0.0f) {
      writer.Put(0u);
      continue;
    }
    const double a =
        std::min(1.0, std::abs(static_cast<double>(grad[i])) / scale);
    // Interval [levels[j], levels[j+1]] containing a.
    uint32_t j = static_cast<uint32_t>(
        std::upper_bound(levels.begin(), levels.end(),
                         static_cast<float>(a)) -
        levels.begin());
    j = j == 0 ? 0 : j - 1;
    if (j >= s) j = s - 1;
    const double lo = levels[j];
    const double hi = levels[j + 1];
    uint32_t level = j;
    if (hi > lo) {
      const double p = (a - lo) / (hi - lo);  // unbiased split
      if (stream.UniformAt(static_cast<uint64_t>(i)) < p) level = j + 1;
    } else if (a >= hi) {
      level = j + 1;
    }
    const uint32_t sign = grad[i] < 0.0f ? 1u : 0u;
    writer.Put((sign << (bits_ - 1)) | level);
  }
  writer.Finish();
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status AdaptiveQsgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                                 const Shape& shape,
                                 CodecWorkspace* workspace,
                                 float* out) const {
  codec_internal::CodecObsScope obs_scope("adaptive_qsgd",
                                          /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "adaptive_qsgd", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  const float* levels =
      FloatsAt(bytes, buckets * static_cast<int64_t>(sizeof(float)));
  BitReader reader(
      WordsAt(bytes, (buckets + level_count_ + 1) *
                         static_cast<int64_t>(sizeof(float))),
      bits_);

  const uint32_t magnitude_mask = (1u << (bits_ - 1)) - 1u;
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);
    const double scale = scales[b];
    for (int64_t i = begin; i < end; ++i) {
      const uint32_t field = reader.Next();
      const bool negative = (field >> (bits_ - 1)) & 1u;
      uint32_t level = field & magnitude_mask;
      if (level > level_count_) level = level_count_;
      const double magnitude = levels[level] * scale;
      out[i] = static_cast<float>(negative ? -magnitude : magnitude);
    }
  }
  return OkStatus();
}

CodecSpec AdaptiveQsgdSpec(int bits) {
  CodecSpec spec = QsgdSpec(bits);
  spec.kind = CodecKind::kQsgdAdaptive;
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkAdaptiveQsgdCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily AdaptiveQsgdFamily() {
  CodecFamily family;
  family.kind = CodecKind::kQsgdAdaptive;
  family.name = "aq<bits>";
  family.help = "adaptive-level QSGD (ZipML placement), bits in [2,16], "
                "optional :<bucket> or bucket=";
  family.keys = {"bucket"};
  family.matches = [](const std::string& head) {
    return MatchesBitsHead(head, "aq");
  };
  family.parse = [](const std::string& head,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    LPSGD_ASSIGN_OR_RETURN(const int bits,
                           ParseBitsHead(head, "aq", "AdaptiveQSGD"));
    CodecSpec spec = AdaptiveQsgdSpec(bits);
    LPSGD_RETURN_IF_ERROR(TakeBucketParam(params, &spec));
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bits < 2 || spec.bits > 16) {
      return InvalidArgumentError(
          StrCat("AdaptiveQSGD bits must be in [2, 16], got ", spec.bits));
    }
    if (spec.bucket_size <= 0) {
      return InvalidArgumentError(
          StrCat("AdaptiveQSGD bucket size must be positive, got ",
                 spec.bucket_size));
    }
    return std::unique_ptr<GradientCodec>(
        new AdaptiveQsgdCodec(spec.bits, spec.bucket_size, spec.seed));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat("AdaptiveQSGD ", spec.bits, "bit (b=", spec.bucket_size,
                  ")");
  };
  family.short_label = [](const CodecSpec& spec) {
    return StrCat("AQ", spec.bits);
  };
  return family;
}

const CodecRegistrar registrar(AdaptiveQsgdFamily());

}  // namespace
}  // namespace lpsgd
