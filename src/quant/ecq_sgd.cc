// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/ecq_sgd.h"

#include <algorithm>
#include <cmath>

#include "base/bit_packing.h"
#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "quant/registry.h"
#include "quant/simd_kernels.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace {

using codec_internal::FloatsAt;
using codec_internal::MutableFloatsAt;
using codec_internal::MutableWordsAt;
using codec_internal::WordsAt;

}  // namespace

EcqSgdCodec::EcqSgdCodec(int bits, int64_t bucket_size, bool error_feedback,
                         uint64_t seed)
    : bits_(bits),
      bucket_size_(bucket_size),
      error_feedback_(error_feedback),
      seed_(seed) {
  CHECK_GE(bits, 2);
  CHECK_LE(bits, 16);
  CHECK_GT(bucket_size, 0);
  level_count_ = (1u << (bits_ - 1)) - 1u;
  CHECK_GE(level_count_, 1u);
}

std::string EcqSgdCodec::Name() const {
  return StrCat("ECQ-SGD ", bits_, "bit (b=", bucket_size_, ")");
}

int64_t EcqSgdCodec::NumChunks(const Shape& shape) const {
  const int64_t n = shape.element_count();
  return (n + bucket_size_ - 1) / bucket_size_;
}

int64_t EcqSgdCodec::EncodedSizeBytes(const Shape& shape) const {
  const int64_t n = shape.element_count();
  const BitPacker packer(bits_);
  return NumChunks(shape) * static_cast<int64_t>(sizeof(float)) +
         packer.WordCount(n) * static_cast<int64_t>(sizeof(uint32_t)) +
         codec_internal::kWireChecksumBytes;
}

LPSGD_HOT_PATH
void EcqSgdCodec::Encode(const float* grad, const Shape& shape,
                         uint64_t stochastic_tag, std::vector<float>* error,
                         CodecWorkspace* workspace,
                         std::vector<uint8_t>* out) const {
  codec_internal::CodecObsScope obs_scope("ecq_sgd", /*encode=*/true, out);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseEncode);
  const int64_t n = shape.element_count();
  CHECK(!error_feedback_ || error != nullptr);
  if (error_feedback_) {
    CHECK_EQ(static_cast<int64_t>(error->size()), n);
  }
  const int64_t buckets = NumChunks(shape);
  const CounterRng stream(seed_, stochastic_tag);
  const uint32_t s = level_count_;

  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  const ElementwiseKernels& elementwise = ActiveElementwiseKernels();

  // v = grad + carried error, staged once in workspace scratch; the
  // quantizer below runs over v, and the fresh residual v - Q(v) replaces
  // the error buffer in the same loop.
  float* corrected =
      quant_internal::EnsureSize(&workspace->corrected, static_cast<size_t>(n));
  kernels.stage_corrected(grad, error_feedback_ ? error->data() : nullptr,
                          corrected, n);

  // magnitudes[m] = m / s, the same table Decode builds, so the residual
  // uses bit-identical dequantized values.
  double* magnitudes = quant_internal::EnsureSize(
      &workspace->magnitudes, static_cast<size_t>(s) + 1);
  for (uint32_t m = 0; m <= s; ++m) {
    magnitudes[m] = m / static_cast<double>(s);
  }

  uint8_t* blob = quant_internal::EnsureSize(
      out, static_cast<size_t>(EncodedSizeBytes(shape)));
  float* scales = MutableFloatsAt(blob, 0);
  BitWriter writer(
      MutableWordsAt(blob, buckets * static_cast<int64_t>(sizeof(float))),
      bits_);

  // QSGD stochastic rounding of a * s (unbiased, Equation 1) fused with
  // the residual refresh, via the runtime-dispatched kernel table.
  quant_simd::QuantizeArgs args;
  args.values = corrected;
  args.stream_seed = stream.stream_seed();
  args.bits = bits_;
  args.level_count = s;
  args.writer = &writer;
  args.magnitudes = magnitudes;
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket_size_;
    const int64_t end = std::min(begin + bucket_size_, n);

    const double scale = elementwise.max_abs_f32(corrected + begin,
                                                 end - begin);
    scales[b] = static_cast<float>(scale);
    if (scale == 0.0) {
      // All-zero bucket: zero fields, zero residual.
      for (int64_t i = begin; i < end; ++i) {
        writer.Put(0u);
        if (error_feedback_) (*error)[static_cast<size_t>(i)] = 0.0f;
      }
      continue;
    }

    args.begin = begin;
    args.end = end;
    args.scale = scale;
    args.error = error_feedback_ ? error->data() : nullptr;
    kernels.ecq_quantize(args);
  }
  writer.Finish();
  codec_internal::SealWireBlob(
      blob, EncodedSizeBytes(shape) - codec_internal::kWireChecksumBytes);
}

LPSGD_HOT_PATH
Status EcqSgdCodec::Decode(const uint8_t* bytes, int64_t num_bytes,
                           const Shape& shape, CodecWorkspace* workspace,
                           float* out) const {
  codec_internal::CodecObsScope obs_scope("ecq_sgd", /*encode=*/false);
  obs::PhaseTimer phase_timer(&workspace->phases, obs::kPhaseDecode);
  const int64_t n = shape.element_count();
  LPSGD_RETURN_IF_ERROR(codec_internal::VerifyWireBlob(
      "ecq_sgd", bytes, num_bytes, EncodedSizeBytes(shape)));
  const int64_t buckets = NumChunks(shape);
  const float* scales = FloatsAt(bytes, 0);
  BitReader reader(
      WordsAt(bytes, buckets * static_cast<int64_t>(sizeof(float))), bits_);

  double* magnitudes = quant_internal::EnsureSize(
      &workspace->magnitudes, static_cast<size_t>(level_count_) + 1);
  for (uint32_t m = 0; m <= level_count_; ++m) {
    magnitudes[m] = m / static_cast<double>(level_count_);
  }
  const quant_simd::CodecKernels& kernels = quant_simd::ActiveCodecKernels();
  quant_simd::DequantizeArgs args;
  args.reader = &reader;
  args.bits = bits_;
  args.magnitude_mask = (1u << (bits_ - 1)) - 1u;
  args.magnitudes = magnitudes;
  args.out = out;
  for (int64_t b = 0; b < buckets; ++b) {
    args.begin = b * bucket_size_;
    args.end = std::min(args.begin + bucket_size_, n);
    args.scale = scales[b];
    kernels.dequantize_sm(args);
  }
  return OkStatus();
}

CodecSpec EcqSgdSpec(int bits) {
  CodecSpec spec = QsgdSpec(bits);
  spec.kind = CodecKind::kEcqSgd;
  return spec;
}

namespace codec_internal {
// Force-link anchor referenced by registry.cc (see kCodecFamilyLinkAnchor).
int LinkEcqSgdCodecFamily() { return 0; }
}  // namespace codec_internal

namespace {

CodecFamily EcqSgdFamily() {
  CodecFamily family;
  family.kind = CodecKind::kEcqSgd;
  family.name = "ecq<bits>";
  family.help = "error-compensated QSGD, bits in [2,16], optional "
                ":<bucket> or bucket=";
  family.keys = {"bucket"};
  family.matches = [](const std::string& head) {
    return MatchesBitsHead(head, "ecq");
  };
  family.parse = [](const std::string& head,
                    CodecParams* params) -> StatusOr<CodecSpec> {
    LPSGD_ASSIGN_OR_RETURN(const int bits,
                           ParseBitsHead(head, "ecq", "ECQ-SGD"));
    CodecSpec spec = EcqSgdSpec(bits);
    LPSGD_RETURN_IF_ERROR(TakeBucketParam(params, &spec));
    return spec;
  };
  family.create = [](const CodecSpec& spec)
      -> StatusOr<std::unique_ptr<GradientCodec>> {
    if (spec.bits < 2 || spec.bits > 16) {
      return InvalidArgumentError(
          StrCat("ECQ-SGD bits must be in [2, 16], got ", spec.bits));
    }
    if (spec.bucket_size <= 0) {
      return InvalidArgumentError(StrCat(
          "ECQ-SGD bucket size must be positive, got ", spec.bucket_size));
    }
    return std::unique_ptr<GradientCodec>(new EcqSgdCodec(
        spec.bits, spec.bucket_size, spec.error_feedback, spec.seed));
  };
  family.label = [](const CodecSpec& spec) {
    return StrCat("ECQ-SGD ", spec.bits, "bit (b=", spec.bucket_size, ")");
  };
  family.short_label = [](const CodecSpec& spec) {
    return StrCat("EC", spec.bits);
  };
  return family;
}

const CodecRegistrar registrar(EcqSgdFamily());

}  // namespace
}  // namespace lpsgd
