// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_POLICY_H_
#define LPSGD_QUANT_POLICY_H_

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/shape.h"

namespace lpsgd {

// Per-matrix quantization decisions (Section 3.2.2): matrices holding a
// tiny share of the model's parameters are sent at full precision, because
// quantizing them costs kernel-launch time while saving almost no
// communication. The threshold is chosen so that at least
// `min_quantized_fraction` of all parameters remain quantized.
struct QuantizationPolicyOptions {
  double min_quantized_fraction = 0.99;
  // When true, parameters flagged ParamKind::kBias are always bypassed
  // (they are vectors, negligible traffic).
  bool always_bypass_biases = true;
  // Ablation switches (Section 5.1, "Impact of Layer Types"): restrict
  // quantization to one layer family, sending the other at full precision.
  bool quantize_convolutional = true;
  bool quantize_fully_connected = true;
};

// Returns, for each matrix i described by (shapes[i], kinds[i]), whether it
// should be quantized (true) or bypassed to the full-precision pipeline
// (false).
std::vector<bool> ChooseQuantizedMatrices(
    const std::vector<Shape>& shapes, const std::vector<ParamKind>& kinds,
    const QuantizationPolicyOptions& options);

// Convenience overload for a network's parameter list.
std::vector<bool> ChooseQuantizedMatrices(
    const std::vector<ParamRef>& params,
    const QuantizationPolicyOptions& options);

}  // namespace lpsgd

#endif  // LPSGD_QUANT_POLICY_H_
