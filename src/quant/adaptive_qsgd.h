// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_QUANT_ADAPTIVE_QSGD_H_
#define LPSGD_QUANT_ADAPTIVE_QSGD_H_

#include <string>
#include <vector>

#include "quant/codec.h"

namespace lpsgd {

// QSGD with data-adaptive quantization levels, after ZipML (Zhang et al.,
// ICML 2017). Section 2.3 of the paper: "There are algorithms in which
// quantization levels are distributed to further minimize variance ... We
// implemented this for gradient but does not observe significant
// improvement." This codec reproduces that implementation: instead of s
// uniformly spaced magnitude levels, the levels are placed at the
// quantiles of the gradient's (normalized) magnitude distribution, which
// minimizes expected quantization variance for the observed distribution.
//
// Wire format per matrix: one fp32 max-norm scale per bucket, then the
// shared level table (s + 1 fp32 values in [0, 1], level 0 fixed at 0 and
// level s at 1), then `bits` bits per element (sign + level index), packed
// into 32-bit words. Rounding between adjacent levels is stochastic so the
// estimator stays unbiased.
class AdaptiveQsgdCodec : public GradientCodec {
 public:
  AdaptiveQsgdCodec(int bits, int64_t bucket_size, uint64_t seed);

  std::string Name() const override;
  int64_t EncodedSizeBytes(const Shape& shape) const override;
  int64_t NumChunks(const Shape& shape) const override;
  using GradientCodec::Decode;
  using GradientCodec::Encode;
  void Encode(const float* grad, const Shape& shape, uint64_t stochastic_tag,
              std::vector<float>* error, CodecWorkspace* workspace,
              std::vector<uint8_t>* out) const override;
  Status Decode(const uint8_t* bytes, int64_t num_bytes, const Shape& shape,
                CodecWorkspace* workspace, float* out) const override;

  int bits() const { return bits_; }

  // Exposed for testing: the level table computed for `grad` (normalized
  // magnitudes' quantiles; size level_count() + 1, first 0, last 1).
  std::vector<float> ComputeLevels(const float* grad, const Shape& shape,
                                   const std::vector<float>& scales) const;

  uint32_t level_count() const { return level_count_; }

 private:
  // Fills workspace->levels (using workspace->sample / trial as scratch)
  // with the level table for `grad`; the allocation-free core the public
  // ComputeLevels wraps.
  void ComputeLevelsInto(const float* grad, const Shape& shape,
                         const float* scales,
                         CodecWorkspace* workspace) const;

  int bits_;
  int64_t bucket_size_;
  uint64_t seed_;
  uint32_t level_count_;  // s: highest level index
};

}  // namespace lpsgd

#endif  // LPSGD_QUANT_ADAPTIVE_QSGD_H_
