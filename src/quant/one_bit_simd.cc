// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// AVX2 kernels (and a NEON dequantize) for the flat-bitmap 1bitSGD* hot
// loops. The sign test is the scalar `v >= 0.0f` as an ordered compare
// (NOT a raw sign-bit movemask: -0.0f must count positive and NaN must
// count negative, exactly like the scalar reference); 32 sign bits are
// assembled per word from four 8-lane masks. Buckets may start and end
// mid-word, so the kernels align to 32-element boundaries scalar-first.
#include "quant/simd_kernels.h"

#if defined(__x86_64__)

#include <immintrin.h>

namespace lpsgd {
namespace quant_simd {
namespace avx2 {

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void OneBitQuantize(const float* grad, float* error, int64_t begin,
                    int64_t end, float avg_pos, float avg_neg,
                    uint32_t* bits) {
  int64_t i = begin;
  while (i < end && (i & 31) != 0) {
    OneBitStep(grad, error, i, avg_pos, avg_neg, bits);
    ++i;
  }
  const __m256 zero = _mm256_setzero_ps();
  if (error != nullptr) {
    const __m256 pos_v = _mm256_set1_ps(avg_pos);
    const __m256 neg_v = _mm256_set1_ps(avg_neg);
    for (; i + 32 <= end; i += 32) {
      uint32_t word = 0;
      for (int k = 0; k < 32; k += 8) {
        const __m256 v = _mm256_add_ps(_mm256_loadu_ps(grad + i + k),
                                       _mm256_loadu_ps(error + i + k));
        const __m256 positive = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
        word |= static_cast<uint32_t>(_mm256_movemask_ps(positive)) << k;
        const __m256 average = _mm256_blendv_ps(neg_v, pos_v, positive);
        _mm256_storeu_ps(error + i + k, _mm256_sub_ps(v, average));
      }
      bits[i >> 5] |= word;
    }
  } else {
    for (; i + 32 <= end; i += 32) {
      uint32_t word = 0;
      for (int k = 0; k < 32; k += 8) {
        // v = grad + literal 0.0f, as the scalar step computes it.
        const __m256 v = _mm256_add_ps(_mm256_loadu_ps(grad + i + k), zero);
        const __m256 positive = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
        word |= static_cast<uint32_t>(_mm256_movemask_ps(positive)) << k;
      }
      bits[i >> 5] |= word;
    }
  }
  for (; i < end; ++i) {
    OneBitStep(grad, error, i, avg_pos, avg_neg, bits);
  }
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void OneBitDequantize(const uint32_t* bits, int64_t begin, int64_t end,
                      float avg_pos, float avg_neg, float* out) {
  int64_t i = begin;
  while (i < end && (i & 31) != 0) {
    out[i] = SignBitAt(bits, i) ? avg_pos : avg_neg;
    ++i;
  }
  const __m256i lane_bit =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256 pos_v = _mm256_set1_ps(avg_pos);
  const __m256 neg_v = _mm256_set1_ps(avg_neg);
  for (; i + 32 <= end; i += 32) {
    const uint32_t word = bits[i >> 5];
    for (int k = 0; k < 32; k += 8) {
      const __m256i selected = _mm256_and_si256(
          _mm256_set1_epi32(static_cast<int>(word >> k)), lane_bit);
      const __m256 is_pos = _mm256_castsi256_ps(
          _mm256_cmpeq_epi32(selected, lane_bit));
      _mm256_storeu_ps(out + i + k, _mm256_blendv_ps(neg_v, pos_v, is_pos));
    }
  }
  for (; i < end; ++i) {
    out[i] = SignBitAt(bits, i) ? avg_pos : avg_neg;
  }
}

}  // namespace avx2
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__x86_64__)

#if defined(__aarch64__)

#include <arm_neon.h>

namespace lpsgd {
namespace quant_simd {
namespace neon {

LPSGD_HOT_PATH
void OneBitDequantize(const uint32_t* bits, int64_t begin, int64_t end,
                      float avg_pos, float avg_neg, float* out) {
  int64_t i = begin;
  while (i < end && (i & 31) != 0) {
    out[i] = SignBitAt(bits, i) ? avg_pos : avg_neg;
    ++i;
  }
  const uint32x4_t lane_bit = {1u, 2u, 4u, 8u};
  const float32x4_t pos_v = vdupq_n_f32(avg_pos);
  const float32x4_t neg_v = vdupq_n_f32(avg_neg);
  for (; i + 32 <= end; i += 32) {
    const uint32_t word = bits[i >> 5];
    for (int k = 0; k < 32; k += 4) {
      const uint32x4_t selected =
          vandq_u32(vdupq_n_u32(word >> k), lane_bit);
      const uint32x4_t is_pos = vceqq_u32(selected, lane_bit);
      vst1q_f32(out + i + k, vbslq_f32(is_pos, pos_v, neg_v));
    }
  }
  for (; i < end; ++i) {
    out[i] = SignBitAt(bits, i) ? avg_pos : avg_neg;
  }
}

}  // namespace neon
}  // namespace quant_simd
}  // namespace lpsgd

#endif  // defined(__aarch64__)
