// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_MACHINE_SPECS_H_
#define LPSGD_MACHINE_SPECS_H_

#include <string>
#include <vector>

#include "base/statusor.h"

namespace lpsgd {

// GPU compute model. `relative_speed` scales the paper's measured K80
// single-GPU throughputs (the calibration points in nn/model_zoo); the
// quantization-kernel coefficients model the two-phase CNTK encode kernels
// (Section 3.2.1: phase 1 computes per-chunk statistics, phase 2 packs
// bits), whose cost grows with the number of independently-scaled chunks —
// the reason tiny buckets/columns are expensive.
struct GpuSpec {
  std::string name;          // e.g. "Tesla K80"
  std::string architecture;  // "Kepler" | "Pascal"
  double fp32_tflops = 0.0;  // Figure 2 (single precision)
  double relative_speed = 1.0;  // throughput multiplier vs K80
  double quant_chunk_ns = 0.0;    // per-chunk (column/bucket) overhead
  double quant_element_ns = 0.0;  // per-element quantize/pack cost
};

// Interconnect + communication-stack model. Effective bandwidths shrink
// with GPU count (PCIe root-complex / ring contention):
//   bw(K) = base_bandwidth / (1 + contention * (K - 1)).
// The MPI path additionally stages every message through host memory
// (Section 3.2.1: CNTK's MPI transport copies device->host->device).
struct InterconnectSpec {
  std::string name;  // "PCIe gen3 (EC2 p2)" | "NVLink (DGX-1)"
  double mpi_base_bandwidth_gbps = 0.0;
  double mpi_contention = 0.0;
  double mpi_latency_us = 0.0;  // per point-to-point message
  double nccl_base_bandwidth_gbps = 0.0;
  double nccl_contention = 0.0;
  double nccl_latency_us = 0.0;  // per collective call per matrix
  double host_staging_bandwidth_gbps = 0.0;  // device<->host copies (MPI)
};

// A machine configuration from Figure 2.
struct MachineSpec {
  std::string name;  // "p2.xlarge", "p2.8xlarge", "p2.16xlarge", "DGX-1"
  int num_gpus = 0;
  int cpu_cores = 0;
  GpuSpec gpu;
  InterconnectSpec interconnect;
  double price_per_hour_usd = 0.0;
  // NCCL supported up to this many GPUs (the paper could not run NCCL
  // beyond 8 GPUs; Section 5.2 "Implementation Notes").
  int nccl_max_gpus = 8;

  bool NcclAvailableFor(int gpus) const { return gpus <= nccl_max_gpus; }
};

GpuSpec TeslaK80();
GpuSpec TeslaP100();

// Figure 2 machines.
MachineSpec Ec2P2Xlarge();    // 1 x K80
MachineSpec Ec2P2_8xlarge();  // 8 x K80
MachineSpec Ec2P2_16xlarge(); // 16 x K80
MachineSpec Dgx1();           // 8 x P100, NVLink

// Beyond the paper's single-machine scope (Section 5.4 discusses it as
// future work): two p2.8xlarge nodes joined by 10 GbE. NCCL does not span
// nodes, so only the MPI path is available, and the inter-node link is
// the bottleneck — the regime where low-precision communication matters
// most.
MachineSpec Ec2Cluster2x8();  // 16 x K80 across two nodes

const std::vector<MachineSpec>& PaperMachines();

// Cheapest EC2 P2 machine that offers at least `gpus` GPUs.
StatusOr<MachineSpec> Ec2MachineForGpus(int gpus);

StatusOr<MachineSpec> FindMachine(const std::string& name);

}  // namespace lpsgd

#endif  // LPSGD_MACHINE_SPECS_H_
