// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "machine/specs.h"

#include "base/strings.h"

namespace lpsgd {
namespace {

InterconnectSpec Ec2PciInterconnect() {
  InterconnectSpec ic;
  ic.name = "PCIe gen3 (EC2 p2)";
  // Calibrated against Figure 10/11 (see tests/sim/perf_model_claims_test).
  ic.mpi_base_bandwidth_gbps = 0.90;
  ic.mpi_contention = 0.11;
  ic.mpi_latency_us = 60.0;
  ic.nccl_base_bandwidth_gbps = 9.0;
  ic.nccl_contention = 0.05;
  ic.nccl_latency_us = 25.0;
  ic.host_staging_bandwidth_gbps = 6.0;
  return ic;
}

InterconnectSpec Dgx1NvlinkInterconnect() {
  InterconnectSpec ic;
  ic.name = "NVLink (DGX-1)";
  // MPI on DGX-1 still stages through the host and uses the same
  // reduce-and-broadcast software path; NVLink mainly accelerates NCCL.
  ic.mpi_base_bandwidth_gbps = 1.2;
  ic.mpi_contention = 0.10;
  ic.mpi_latency_us = 40.0;
  ic.nccl_base_bandwidth_gbps = 20.0;
  ic.nccl_contention = 0.03;
  ic.nccl_latency_us = 15.0;
  ic.host_staging_bandwidth_gbps = 10.0;
  return ic;
}

}  // namespace

GpuSpec TeslaK80() {
  GpuSpec gpu;
  gpu.name = "Tesla K80";
  gpu.architecture = "Kepler";
  gpu.fp32_tflops = 8.73;
  gpu.relative_speed = 1.0;
  gpu.quant_chunk_ns = 17.0;
  gpu.quant_element_ns = 0.03;
  return gpu;
}

GpuSpec TeslaP100() {
  GpuSpec gpu;
  gpu.name = "Tesla P100";
  gpu.architecture = "Pascal";
  gpu.fp32_tflops = 10.6;
  // "the GPU is about 40% faster than in the Amazon instances" (Sec 5.2).
  gpu.relative_speed = 1.4;
  gpu.quant_chunk_ns = 12.0;
  gpu.quant_element_ns = 0.021;
  return gpu;
}

MachineSpec Ec2P2Xlarge() {
  MachineSpec m;
  m.name = "p2.xlarge";
  m.num_gpus = 1;
  m.cpu_cores = 4;
  m.gpu = TeslaK80();
  m.interconnect = Ec2PciInterconnect();
  m.price_per_hour_usd = 0.9;
  return m;
}

MachineSpec Ec2P2_8xlarge() {
  MachineSpec m;
  m.name = "p2.8xlarge";
  m.num_gpus = 8;
  m.cpu_cores = 32;
  m.gpu = TeslaK80();
  m.interconnect = Ec2PciInterconnect();
  m.price_per_hour_usd = 7.2;
  return m;
}

MachineSpec Ec2P2_16xlarge() {
  MachineSpec m;
  m.name = "p2.16xlarge";
  m.num_gpus = 16;
  m.cpu_cores = 64;
  m.gpu = TeslaK80();
  m.interconnect = Ec2PciInterconnect();
  m.price_per_hour_usd = 14.4;
  return m;
}

MachineSpec Dgx1() {
  MachineSpec m;
  m.name = "DGX-1";
  m.num_gpus = 8;
  m.cpu_cores = 32;
  m.gpu = TeslaP100();
  m.interconnect = Dgx1NvlinkInterconnect();
  m.price_per_hour_usd = 50.0;  // Nimbix hourly price from Figure 2
  return m;
}

MachineSpec Ec2Cluster2x8() {
  MachineSpec m;
  m.name = "2x p2.8xlarge (10GbE)";
  m.num_gpus = 16;
  m.cpu_cores = 64;
  m.gpu = TeslaK80();
  // The inter-node 10 GbE link (~1.25 GB/s raw, less in practice) caps the
  // reduce-and-broadcast exchange; contention grows with ranks sharing it.
  m.interconnect = Ec2PciInterconnect();
  m.interconnect.name = "PCIe + 10GbE inter-node";
  m.interconnect.mpi_base_bandwidth_gbps = 0.55;
  m.interconnect.mpi_contention = 0.13;
  m.interconnect.mpi_latency_us = 120.0;  // network hops
  m.price_per_hour_usd = 14.4;            // 2 x $7.2
  m.nccl_max_gpus = 0;  // NCCL does not span nodes (Section 5.4)
  return m;
}

const std::vector<MachineSpec>& PaperMachines() {
  static const std::vector<MachineSpec>& kMachines =
      *new std::vector<MachineSpec>{Ec2P2Xlarge(), Ec2P2_8xlarge(),
                                    Ec2P2_16xlarge(), Dgx1()};
  return kMachines;
}

StatusOr<MachineSpec> Ec2MachineForGpus(int gpus) {
  if (gpus <= 0) return InvalidArgumentError("gpus must be positive");
  if (gpus <= 1) return Ec2P2Xlarge();
  if (gpus <= 8) return Ec2P2_8xlarge();
  if (gpus <= 16) return Ec2P2_16xlarge();
  return NotFoundError(
      StrCat("no EC2 P2 instance with ", gpus, " GPUs"));
}

StatusOr<MachineSpec> FindMachine(const std::string& name) {
  for (const MachineSpec& m : PaperMachines()) {
    if (m.name == name) return m;
  }
  return NotFoundError(StrCat("unknown machine: ", name));
}

}  // namespace lpsgd
