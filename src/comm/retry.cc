// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/retry.h"

#include <cstring>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace {

// Codes worth re-attempting: the failure is tied to this exchange, not to
// the system's ability to ever complete one. ABORTED (a crashed rank) is
// deliberately excluded — the trainer must reconfigure, not retry.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss || code == StatusCode::kInternal;
}

}  // namespace

StatusOr<std::unique_ptr<RetryingAggregator>> RetryingAggregator::Create(
    std::unique_ptr<GradientAggregator> inner, ExchangeRetryOptions options) {
  if (inner == nullptr) {
    return InvalidArgumentError("RetryingAggregator needs an inner engine");
  }
  if (options.max_retries < 0) {
    return InvalidArgumentError(
        StrCat("max_retries must be >= 0, got ", options.max_retries));
  }
  if (options.timeout_seconds < 0.0 || options.backoff_base_seconds < 0.0) {
    return InvalidArgumentError("retry time budgets must be >= 0");
  }
  return std::unique_ptr<RetryingAggregator>(
      new RetryingAggregator(std::move(inner), options));
}

std::string RetryingAggregator::Name() const {
  return StrCat(inner_->Name(), " + retry(", options_.max_retries, ")");
}

void RetryingAggregator::SnapshotSlots(const std::vector<MatrixSlot>& slots) {
  const size_t k = static_cast<size_t>(inner_->num_ranks());
  const size_t total = slots.size() * k;
  if (grad_snapshot_.size() < total) grad_snapshot_.resize(total);
  if (error_snapshot_.size() < total) error_snapshot_.resize(total);
  for (size_t m = 0; m < slots.size(); ++m) {
    const MatrixSlot& slot = slots[m];
    const size_t n = static_cast<size_t>(slot.quant_shape.element_count());
    for (size_t r = 0; r < slot.rank_grads.size(); ++r) {
      grad_snapshot_[m * k + r].assign(slot.rank_grads[r],
                                       slot.rank_grads[r] + n);
      std::vector<float>& errors = error_snapshot_[m * k + r];
      if (r < slot.rank_errors.size() && slot.rank_errors[r] != nullptr) {
        errors.assign(slot.rank_errors[r]->begin(),
                      slot.rank_errors[r]->end());
      } else {
        errors.clear();
      }
    }
  }
}

void RetryingAggregator::RestoreSlots(std::vector<MatrixSlot>* slots) const {
  const size_t k = static_cast<size_t>(inner_->num_ranks());
  for (size_t m = 0; m < slots->size(); ++m) {
    MatrixSlot& slot = (*slots)[m];
    const size_t n = static_cast<size_t>(slot.quant_shape.element_count());
    for (size_t r = 0; r < slot.rank_grads.size(); ++r) {
      const std::vector<float>& grads = grad_snapshot_[m * k + r];
      CHECK_EQ(grads.size(), n);
      std::memcpy(slot.rank_grads[r], grads.data(), n * sizeof(float));
      if (r < slot.rank_errors.size() && slot.rank_errors[r] != nullptr) {
        slot.rank_errors[r]->assign(error_snapshot_[m * k + r].begin(),
                                    error_snapshot_[m * k + r].end());
      }
    }
  }
}

LPSGD_HOT_PATH
StatusOr<CommStats> RetryingAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t iteration) {
  CHECK(slots != nullptr);
  // The snapshot/checkpoint copies are serial, attempt-0-only work outside
  // the inner engine's parallel hot loops; they reuse their capacity, so
  // steady-state exchanges stay allocation-free.
  {
    obs::PhaseTimer retry_timer(&phases_, obs::kPhaseRetry);
    SnapshotSlots(*slots);
    inner_->CheckpointExchangeState();
  }

  double penalty_seconds = 0.0;
  Status last_error = OkStatus();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      obs::PhaseTimer retry_timer(&phases_, obs::kPhaseRetry);
      RestoreSlots(slots);
      inner_->RollbackExchangeState();
      if (obs::MetricsEnabled()) obs::Count("comm/retries");
      penalty_seconds += RetryBackoffSeconds(options_, attempt);
    }
    StatusOr<CommStats> result = inner_->AllReduce(slots, iteration);
    if (result.ok()) {
      CommStats stats = result.value();
      if (options_.timeout_seconds > 0.0 &&
          stats.TotalSeconds() > options_.timeout_seconds) {
        // The exchange completed but blew its deadline (e.g. a straggling
        // rank): a real implementation cancels and re-issues, so the
        // attempt's own virtual time is charged and its effects discarded.
        last_error = DeadlineExceededError(
            StrCat("exchange took ", FormatDouble(stats.TotalSeconds(), 4),
                   "s, budget ",
                   FormatDouble(options_.timeout_seconds, 4), "s"));
        penalty_seconds += stats.TotalSeconds();
        // This failure is synthesized above the exchange observer, so it
        // must file its own flight record (everything the inner engine
        // returns non-OK is dumped by the observer instead).
        obs::FlightRecorder::Global().OnExchangeFailure(last_error,
                                                        iteration);
        continue;
      }
      stats.comm_seconds += penalty_seconds;
      FoldPhases(penalty_seconds);
      return stats;
    }
    last_error = result.status();
    if (!IsTransient(last_error.code())) break;
  }

  // Budget exhausted or non-retryable: leave every caller-visible buffer
  // and the inner engine exactly as they were before the call.
  {
    obs::PhaseTimer retry_timer(&phases_, obs::kPhaseRetry);
    RestoreSlots(slots);
    inner_->RollbackExchangeState();
  }
  FoldPhases(penalty_seconds);
  return last_error;
}

void RetryingAggregator::FoldPhases(double penalty_seconds) {
  if (!obs::ProfileEnabled()) {
    phases_.Clear();
    return;
  }
  // The backoff penalty is virtual retry time (it is also folded into the
  // returned comm_seconds — the breakdown attributes where the virtual
  // total came from, it does not re-sum it).
  phases_.AddVirtual(obs::kPhaseRetry, penalty_seconds);
  obs::Profiler::Global().AddPhases(phases_);
  phases_.Clear();
}

}  // namespace lpsgd
