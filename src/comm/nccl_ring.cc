// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/nccl_ring.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lpsgd {

StatusOr<std::unique_ptr<NcclRingAggregator>> NcclRingAggregator::Create(
    int num_ranks, const CodecSpec& spec, const MachineSpec& machine,
    const ExecutionContext& execution) {
  if (num_ranks < 1) {
    return InvalidArgumentError("num_ranks must be >= 1");
  }
  if (num_ranks > machine.nccl_max_gpus) {
    return FailedPreconditionError(
        "NCCL does not support more than 8 GPUs (Section 5.2)");
  }
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> codec,
                         spec.Create());
  return std::unique_ptr<NcclRingAggregator>(new NcclRingAggregator(
      num_ranks, spec, std::move(codec), machine, execution));
}

NcclRingAggregator::NcclRingAggregator(int num_ranks, CodecSpec spec,
                                       std::unique_ptr<GradientCodec> codec,
                                       const MachineSpec& machine,
                                       ExecutionContext execution)
    : num_ranks_(num_ranks),
      spec_(std::move(spec)),
      codec_(std::move(codec)),
      cost_model_(machine),
      exec_(std::move(execution)),
      // One codec workspace per thread-pool slot, like the MPI
      // aggregator's (see ThreadPool::CurrentSlot()).
      workspaces_(static_cast<size_t>(exec_.threads())) {}

StatusOr<CommStats> NcclRingAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t iteration) {
  CHECK(slots != nullptr);
  obs::ScopedTimer wall_timer("comm/allreduce_wall_seconds");
  obs::TraceSpan allreduce_span("nccl_ring/allreduce", "comm");
  const int k = num_ranks_;
  const int64_t num_matrices = static_cast<int64_t>(slots->size());
  const bool identity_codec = spec_.kind == CodecKind::kFullPrecision;

  // A matrix takes the sparse wire path when its codec has a sparse wire
  // form; dense codecs ride the exact fp32 ring below (the paper's NCCL
  // simulation).
  const auto takes_sparse_path = [&](const MatrixSlot& slot) {
    return slot.quantized && !identity_codec &&
           codec_->SparseCount(slot.quant_shape) > 0;
  };

  // Serial setup: validate the slots and size the sparse scratch so the
  // parallel stages below stay allocation-free.
  bool any_sparse = false;
  {
    obs::PhaseTimer setup_timer(&workspaces_[0].phases, obs::kPhaseSum);
    if (sparse_indices_.size() < slots->size()) {
      sparse_indices_.resize(slots->size());
    }
    if (sparse_values_.size() < slots->size()) {
      sparse_values_.resize(slots->size());
    }
    if (aggregates_.size() < slots->size()) {
      aggregates_.resize(slots->size());
    }
    for (int64_t m = 0; m < num_matrices; ++m) {
      const MatrixSlot& slot = (*slots)[static_cast<size_t>(m)];
      CHECK_EQ(static_cast<int>(slot.rank_grads.size()), k);
      if (takes_sparse_path(slot)) {
        any_sparse = true;
        auto& indices = sparse_indices_[static_cast<size_t>(m)];
        auto& values = sparse_values_[static_cast<size_t>(m)];
        if (indices.size() < static_cast<size_t>(k)) {
          indices.resize(static_cast<size_t>(k));
        }
        if (values.size() < static_cast<size_t>(k)) {
          values.resize(static_cast<size_t>(k));
        }
      }
    }
  }

  // Sparse stage A (parallel over (matrix, rank)): every rank encodes its
  // gradient — folding in its error-feedback residual — and the blob is
  // sparse-decoded into that rank's (index, value) run. The real wire
  // path: integrity words are produced and verified per blob.
  if (any_sparse) {
    const Status encode_status = exec_.ParallelFor(
        0, num_matrices * k, LPSGD_HOT_PATH [&](int64_t task) -> Status {
          const size_t m = static_cast<size_t>(task / k);
          const size_t r = static_cast<size_t>(task % k);
          MatrixSlot& slot = (*slots)[m];
          if (!takes_sparse_path(slot)) return OkStatus();
          const int slot_id = ThreadPool::CurrentSlot();
          CHECK_LT(static_cast<size_t>(slot_id), workspaces_.size());
          CodecWorkspace& ws = workspaces_[static_cast<size_t>(slot_id)];
          const uint64_t tag = comm_internal::ExchangeRankTag(
              iteration, static_cast<int64_t>(m), static_cast<int>(r));
          std::vector<float>* error =
              codec_->UsesErrorFeedback() ? slot.rank_errors[r] : nullptr;
          codec_->Encode(slot.rank_grads[r], slot.quant_shape, tag, error,
                         &ws, &ws.blob);
          const int64_t sparse_count =
              codec_->SparseCount(slot.quant_shape);
          uint32_t* indices;
          float* values;
          {
            // First-call growth of the decode scratch is staging work.
            obs::PhaseTimer scratch_timer(&ws.phases, obs::kPhaseSum);
            indices = quant_internal::EnsureSize(
                &sparse_indices_[m][r], static_cast<size_t>(sparse_count));
            values = quant_internal::EnsureSize(
                &sparse_values_[m][r], static_cast<size_t>(sparse_count));
          }
          LPSGD_RETURN_IF_ERROR(codec_->DecodeSparse(
              ws.blob.data(), static_cast<int64_t>(ws.blob.size()),
              slot.quant_shape, &ws, indices, values));
          return OkStatus();
        });
    if (!encode_status.ok()) {
      // Partial phase scratch from the failed attempt must not leak into
      // the next (retried) exchange's breakdown.
      for (CodecWorkspace& ws : workspaces_) ws.phases.Clear();
      return encode_status;
    }
  }

  // Ring reduce-scatter + allgather, parallel over (matrix, segment)
  // tasks; sparse-path matrices are aggregated in stage C instead.
  // Segments are disjoint index ranges and each segment's sum accumulates
  // in fixed ring order (exactly like NCCL's ring), so the result is
  // bit-identical at any thread count.
  LPSGD_RETURN_IF_ERROR(exec_.ParallelFor(
      0, num_matrices * k, LPSGD_HOT_PATH [&](int64_t task) -> Status {
        MatrixSlot& slot = (*slots)[static_cast<size_t>(task / k)];
        if (takes_sparse_path(slot)) return OkStatus();
        const int seg = static_cast<int>(task % k);
        const int64_t n = slot.quant_shape.element_count();
        const int64_t segment = (n + k - 1) / k;
        const int64_t begin = seg * segment;
        const int64_t end = std::min(begin + segment, n);
        if (begin >= end) return OkStatus();
        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), workspaces_.size());
        obs::PhaseTimes& phases =
            workspaces_[static_cast<size_t>(slot_id)].phases;
        // Accumulate contributions in ring order starting from the
        // segment owner's successor.
        const int owner = seg;
        float* acc = slot.rank_grads[static_cast<size_t>(owner)];
        {
          obs::PhaseTimer sum_timer(&phases, obs::kPhaseSum);
          // Hop order is the sequential chain; within a hop the elements
          // are independent, so the add dispatches to the elementwise SIMD
          // kernel without changing any rounding.
          const ElementwiseKernels& elementwise = ActiveElementwiseKernels();
          for (int hop = 1; hop < k; ++hop) {
            const int src = (owner + hop) % k;
            const float* other = slot.rank_grads[static_cast<size_t>(src)];
            elementwise.add_assign_f32(acc + begin, other + begin,
                                       end - begin);
          }
        }
        // Allgather: the reduced segment is copied to every rank.
        {
          obs::PhaseTimer wire_timer(&phases, obs::kPhaseWire);
          for (int r = 0; r < k; ++r) {
            if (r == owner) continue;
            float* dst = slot.rank_grads[static_cast<size_t>(r)];
            for (int64_t i = begin; i < end; ++i) dst[i] = acc[i];
          }
        }
        return OkStatus();
      }));

  // Sparse stage C (parallel over matrices): scatter-add the k decoded
  // runs in rank order — element-equal to the dense sum, since absent
  // components contribute exact zeros — and hand every rank the
  // aggregate.
  if (any_sparse) {
    LPSGD_RETURN_IF_ERROR(exec_.ParallelFor(
        0, num_matrices, LPSGD_HOT_PATH [&](int64_t mi) -> Status {
          const size_t m = static_cast<size_t>(mi);
          MatrixSlot& slot = (*slots)[m];
          if (!takes_sparse_path(slot)) return OkStatus();
          const int slot_id = ThreadPool::CurrentSlot();
          CHECK_LT(static_cast<size_t>(slot_id), workspaces_.size());
          obs::PhaseTimes& phases =
              workspaces_[static_cast<size_t>(slot_id)].phases;
          const int64_t n = slot.quant_shape.element_count();
          const int64_t sparse_count =
              codec_->SparseCount(slot.quant_shape);
          float* aggregate;
          {
            obs::PhaseTimer sum_timer(&phases, obs::kPhaseSum);
            aggregate = quant_internal::EnsureSize(&aggregates_[m],
                                                   static_cast<size_t>(n));
            std::fill(aggregate, aggregate + n, 0.0f);
            for (int r = 0; r < k; ++r) {
              const uint32_t* indices =
                  sparse_indices_[m][static_cast<size_t>(r)].data();
              const float* values =
                  sparse_values_[m][static_cast<size_t>(r)].data();
              for (int64_t i = 0; i < sparse_count; ++i) {
                aggregate[indices[i]] += values[i];
              }
            }
          }
          {
            obs::PhaseTimer wire_timer(&phases, obs::kPhaseWire);
            for (int r = 0; r < k; ++r) {
              std::memcpy(slot.rank_grads[static_cast<size_t>(r)],
                          aggregate, static_cast<size_t>(n) * sizeof(float));
            }
          }
          return OkStatus();
        }));
  }

  // Accounting pass (serial, matrix order): wire sizing and kernel-time
  // charges are pure arithmetic on shapes, independent of the exchange.
  CommStats stats;
  for (MatrixSlot& slot : *slots) {
    obs::TraceSpan matrix_span("nccl_ring/matrix", "comm");
    const int64_t n = slot.quant_shape.element_count();
    const int64_t raw_bytes = n * static_cast<int64_t>(sizeof(float));
    stats.raw_bytes += raw_bytes;

    const bool low_precision = slot.quantized && !identity_codec;
    int64_t payload = raw_bytes;
    if (low_precision) {
      payload = codec_->EncodedSizeBytes(slot.quant_shape);
      if (takes_sparse_path(slot)) {
        // Sparse allgather: every rank receives every other rank's blob,
        // so the per-rank traffic is k blobs, not one ring payload.
        payload *= k;
      }
    }
    stats.wire_bytes += payload;
    stats.messages += 1;
    matrix_span.set_bytes(payload);
    if (low_precision) {
      const int64_t chunks = codec_->NumChunks(slot.quant_shape);
      // Encode before and decode after the collective, at each rank.
      stats.encode_seconds +=
          2.0 * cost_model_.QuantKernelSeconds(n, chunks);
    }
  }

  stats.comm_seconds +=
      cost_model_.NcclAllReduceSeconds(stats.wire_bytes, stats.messages, k);
  allreduce_span.set_bytes(stats.wire_bytes);
  comm_internal::RecordAllReduceStats(stats);
  // Fold the per-slot phase scratch into the profiler's open step —
  // serially, after the parallel stages, so no slot is concurrently
  // written.
  if (obs::ProfileEnabled()) {
    for (CodecWorkspace& ws : workspaces_) {
      obs::Profiler::Global().AddPhases(ws.phases);
      ws.phases.Clear();
    }
  }
  return stats;
}

}  // namespace lpsgd
