// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/nccl_ring.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lpsgd {

StatusOr<std::unique_ptr<NcclRingAggregator>> NcclRingAggregator::Create(
    int num_ranks, const CodecSpec& spec, const MachineSpec& machine,
    const ExecutionContext& execution) {
  if (num_ranks < 1) {
    return InvalidArgumentError("num_ranks must be >= 1");
  }
  if (num_ranks > machine.nccl_max_gpus) {
    return FailedPreconditionError(
        "NCCL does not support more than 8 GPUs (Section 5.2)");
  }
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> codec,
                         spec.Create());
  return std::unique_ptr<NcclRingAggregator>(new NcclRingAggregator(
      num_ranks, spec, std::move(codec), machine, execution));
}

StatusOr<std::unique_ptr<NcclRingAggregator>> NcclRingAggregator::Create(
    int num_ranks, const CodecSpec& spec, const MachineSpec& machine) {
  return Create(num_ranks, spec, machine, ExecutionContext::Serial());
}

NcclRingAggregator::NcclRingAggregator(int num_ranks, CodecSpec spec,
                                       std::unique_ptr<GradientCodec> codec,
                                       const MachineSpec& machine,
                                       ExecutionContext execution)
    : num_ranks_(num_ranks),
      spec_(std::move(spec)),
      codec_(std::move(codec)),
      cost_model_(machine),
      exec_(std::move(execution)),
      // One phase-scratch block per thread-pool slot, like the MPI
      // aggregator's codec workspaces (see ThreadPool::CurrentSlot()).
      slot_phases_(static_cast<size_t>(exec_.threads())) {}

StatusOr<CommStats> NcclRingAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t /*iteration*/) {
  CHECK(slots != nullptr);
  obs::ScopedTimer wall_timer("comm/allreduce_wall_seconds");
  obs::TraceSpan allreduce_span("nccl_ring/allreduce", "comm");
  const int k = num_ranks_;
  const int64_t num_matrices = static_cast<int64_t>(slots->size());
  for (const MatrixSlot& slot : *slots) {
    CHECK_EQ(static_cast<int>(slot.rank_grads.size()), k);
  }

  // Ring reduce-scatter + allgather, parallel over (matrix, segment)
  // tasks. Segments are disjoint index ranges and each segment's sum
  // accumulates in fixed ring order (exactly like NCCL's ring), so the
  // result is bit-identical at any thread count.
  LPSGD_RETURN_IF_ERROR(exec_.ParallelFor(
      0, num_matrices * k, LPSGD_HOT_PATH [&](int64_t task) -> Status {
        MatrixSlot& slot = (*slots)[static_cast<size_t>(task / k)];
        const int seg = static_cast<int>(task % k);
        const int64_t n = slot.quant_shape.element_count();
        const int64_t segment = (n + k - 1) / k;
        const int64_t begin = seg * segment;
        const int64_t end = std::min(begin + segment, n);
        if (begin >= end) return OkStatus();
        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), slot_phases_.size());
        obs::PhaseTimes& phases = slot_phases_[static_cast<size_t>(slot_id)];
        // Accumulate contributions in ring order starting from the
        // segment owner's successor.
        const int owner = seg;
        float* acc = slot.rank_grads[static_cast<size_t>(owner)];
        {
          obs::PhaseTimer sum_timer(&phases, obs::kPhaseSum);
          for (int hop = 1; hop < k; ++hop) {
            const int src = (owner + hop) % k;
            const float* other = slot.rank_grads[static_cast<size_t>(src)];
            for (int64_t i = begin; i < end; ++i) acc[i] += other[i];
          }
        }
        // Allgather: the reduced segment is copied to every rank.
        {
          obs::PhaseTimer wire_timer(&phases, obs::kPhaseWire);
          for (int r = 0; r < k; ++r) {
            if (r == owner) continue;
            float* dst = slot.rank_grads[static_cast<size_t>(r)];
            for (int64_t i = begin; i < end; ++i) dst[i] = acc[i];
          }
        }
        return OkStatus();
      }));

  // Accounting pass (serial, matrix order): wire sizing and kernel-time
  // charges are pure arithmetic on shapes, independent of the exchange.
  CommStats stats;
  const bool identity_codec = spec_.kind == CodecKind::kFullPrecision;
  for (MatrixSlot& slot : *slots) {
    obs::TraceSpan matrix_span("nccl_ring/matrix", "comm");
    const int64_t n = slot.quant_shape.element_count();
    const int64_t raw_bytes = n * static_cast<int64_t>(sizeof(float));
    stats.raw_bytes += raw_bytes;

    const bool simulate_low_precision = slot.quantized && !identity_codec;
    const int64_t payload = simulate_low_precision
                                ? codec_->EncodedSizeBytes(slot.quant_shape)
                                : raw_bytes;
    stats.wire_bytes += payload;
    stats.messages += 1;
    matrix_span.set_bytes(payload);
    if (simulate_low_precision) {
      const int64_t chunks = codec_->NumChunks(slot.quant_shape);
      // Encode before and decode after the collective, at each rank.
      stats.encode_seconds +=
          2.0 * cost_model_.QuantKernelSeconds(n, chunks);
    }
  }

  stats.comm_seconds +=
      cost_model_.NcclAllReduceSeconds(stats.wire_bytes, stats.messages, k);
  allreduce_span.set_bytes(stats.wire_bytes);
  comm_internal::RecordAllReduceStats(stats);
  // Fold the per-slot ring spans into the profiler's open step — serially,
  // after the parallel loop, so no slot is concurrently written.
  if (obs::ProfileEnabled()) {
    for (obs::PhaseTimes& phases : slot_phases_) {
      obs::Profiler::Global().AddPhases(phases);
      phases.Clear();
    }
  }
  return stats;
}

}  // namespace lpsgd
