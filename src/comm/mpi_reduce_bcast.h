// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_MPI_REDUCE_BCAST_H_
#define LPSGD_COMM_MPI_REDUCE_BCAST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "comm/cost_model.h"
#include "quant/codec.h"
#include "quant/workspace.h"

namespace lpsgd {

// The CNTK MPI reduce-and-broadcast exchange (Section 2.4.1), with the
// quantize/unquantize steps of Section 3.2.1:
//
//   1. Every rank encodes each gradient matrix with the configured codec,
//      folding in its local error-feedback residual.
//   2. The matrix's owner rank (round-robin by matrix index, standing in
//      for CNTK's contiguous-range ownership) decodes all K blobs and sums
//      them.
//   3. The owner re-encodes the aggregate — carrying a persistent
//      aggregation residual of its own, exactly like CNTK's 1bitSGD — and
//      broadcasts it; every rank decodes it into its gradient buffer.
//
// Matrices bypassed by the quantization policy (slot.quantized == false)
// travel the full-precision pipeline.
class MpiReduceBcastAggregator : public GradientAggregator {
 public:
  // Creates an aggregator for `num_ranks` simulated GPUs exchanging
  // gradients encoded per `spec`, timed on `machine`, with host work
  // (per-rank encodes, per-blob decode+sum) running on `execution`.
  [[nodiscard]] static StatusOr<std::unique_ptr<MpiReduceBcastAggregator>>
  Create(int num_ranks, const CodecSpec& spec, const MachineSpec& machine,
         const ExecutionContext& execution);

  std::string Name() const override { return "MPI reduce-and-broadcast"; }
  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override;
  int num_ranks() const override { return num_ranks_; }

  // Transaction hooks (comm/allreduce.h): the persistent cross-call state
  // is the owner-side aggregation residuals. AllReduce checkpoints them on
  // entry and rolls back before returning any error, so a failed exchange
  // leaves them untouched; the retry layer rolls back when discarding a
  // successful-but-over-deadline exchange.
  void CheckpointExchangeState() override;
  void RollbackExchangeState() override;

  // Durable-checkpoint hooks: the owner-side aggregation residuals are the
  // only cross-call state, and they are per-matrix (rank-count
  // independent), so a restore at a different rank count imports them
  // unchanged.
  void ExportExchangeState(
      std::vector<std::vector<float>>* state) const override;
  [[nodiscard]] Status ImportExchangeState(
      const std::vector<std::vector<float>>& state) override;

  const GradientCodec& codec() const { return *codec_; }

  // Test seam: invoked after every stage-1 encode (rank >= 0) and stage-2
  // aggregate encode (rank == -1) with the encoded blob; returning true
  // means the bytes were tampered with. Lets fault tests corrupt the real
  // wire path and exercise checksum verification end to end. Null (the
  // default) disables it.
  using WireTamper = std::function<bool(int64_t iteration, int64_t matrix,
                                        int rank, uint8_t* data,
                                        int64_t size)>;
  void set_wire_tamper(WireTamper tamper) { wire_tamper_ = std::move(tamper); }

 private:
  MpiReduceBcastAggregator(int num_ranks, CodecSpec spec,
                           std::unique_ptr<GradientCodec> codec,
                           const MachineSpec& machine,
                           ExecutionContext execution);

  int num_ranks_;
  CodecSpec spec_;
  std::unique_ptr<GradientCodec> codec_;
  CommCostModel cost_model_;
  ExecutionContext exec_;
  // Aggregation residual per matrix index (owner-side requantization
  // error). Lazily sized on first use.
  std::vector<std::vector<float>> aggregate_errors_;
  // Checkpoint of aggregate_errors_ taken at AllReduce entry (capacity
  // reused across calls); RollbackExchangeState restores from it. Entries
  // that did not exist at checkpoint time are cleared on rollback so the
  // next call's setup re-zeroes them.
  std::vector<std::vector<float>> aggregate_errors_snapshot_;
  size_t aggregate_errors_snapshot_count_ = 0;
  WireTamper wire_tamper_;

  // Reusable exchange workspaces (DESIGN.md "Hot-path kernels and
  // workspaces"): every buffer below grows to the largest model seen and
  // then stays, so steady-state AllReduce calls never touch the heap.
  //
  // Codec scratch, one per thread-pool slot (ThreadPool::CurrentSlot());
  // sized to exec_.threads() at construction.
  std::vector<CodecWorkspace> workspaces_;
  // decoded_[m][r]: rank r's gradient for matrix m after its encode/decode
  // round trip (dense codecs only).
  std::vector<std::vector<std::vector<float>>> decoded_;
  // Sparse codecs (codec->SparseCount() > 0) skip the dense densify: rank
  // r's blob for matrix m decodes into these (index, value) runs and the
  // owner scatter-adds k * SparseCount pairs instead of summing k * n
  // floats.
  std::vector<std::vector<std::vector<uint32_t>>> sparse_indices_;
  std::vector<std::vector<std::vector<float>>> sparse_values_;
  // Owner-side sum of the decoded rank gradients, per matrix.
  std::vector<std::vector<float>> aggregates_;
  // Decoded broadcast blob, per matrix.
  std::vector<std::vector<float>> bcasts_;
  // Full-precision pipeline accumulator, per matrix (double precision, the
  // historical summation).
  std::vector<std::vector<double>> fp_sums_;
  // Per-matrix accounting scratch, merged in matrix order per call.
  std::vector<CommStats> per_matrix_;
  std::vector<int64_t> rank_blob_bytes_;
};

}  // namespace lpsgd

#endif  // LPSGD_COMM_MPI_REDUCE_BCAST_H_
