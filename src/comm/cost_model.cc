// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/cost_model.h"

#include "base/logging.h"

namespace lpsgd {
namespace {

constexpr double kGb = 1e9;
constexpr double kUs = 1e-6;

}  // namespace

CommCostModel::CommCostModel(MachineSpec machine)
    : machine_(std::move(machine)) {}

double CommCostModel::MpiBandwidthBytesPerSec(int k) const {
  CHECK_GE(k, 1);
  const InterconnectSpec& ic = machine_.interconnect;
  return ic.mpi_base_bandwidth_gbps * kGb /
         (1.0 + ic.mpi_contention * (k - 1));
}

double CommCostModel::NcclBandwidthBytesPerSec(int k) const {
  CHECK_GE(k, 1);
  const InterconnectSpec& ic = machine_.interconnect;
  return ic.nccl_base_bandwidth_gbps * kGb /
         (1.0 + ic.nccl_contention * (k - 1));
}

double CommCostModel::MpiExchangeSeconds(int64_t encoded_bytes,
                                         int64_t messages, int k) const {
  CHECK_GE(k, 1);
  if (k == 1) return 0.0;
  const InterconnectSpec& ic = machine_.interconnect;
  // Reduce + broadcast moves 2 (K-1)/K of the payload through each rank's
  // link (Section 2.4.1).
  const double volume =
      2.0 * static_cast<double>(k - 1) / k * static_cast<double>(encoded_bytes);
  const double transfer = volume / MpiBandwidthBytesPerSec(k);
  // CNTK's MPI transport copies each payload device->host before sending
  // and host->device after receiving (Section 3.2.1).
  const double staging =
      2.0 * static_cast<double>(encoded_bytes) /
      (ic.host_staging_bandwidth_gbps * kGb);
  const double latency = ic.mpi_latency_us * kUs * static_cast<double>(messages);
  return transfer + staging + latency;
}

double CommCostModel::NcclAllReduceSeconds(int64_t payload_bytes,
                                           int64_t collectives, int k) const {
  CHECK_GE(k, 1);
  if (k == 1) return 0.0;
  const InterconnectSpec& ic = machine_.interconnect;
  const double volume = 2.0 * static_cast<double>(k - 1) / k *
                        static_cast<double>(payload_bytes);
  const double transfer = volume / NcclBandwidthBytesPerSec(k);
  const double latency =
      ic.nccl_latency_us * kUs * static_cast<double>(collectives);
  return transfer + latency;
}

double CommCostModel::QuantKernelSeconds(int64_t elements,
                                         int64_t chunks) const {
  const GpuSpec& gpu = machine_.gpu;
  return (gpu.quant_chunk_ns * static_cast<double>(chunks) +
          gpu.quant_element_ns * static_cast<double>(elements)) *
         1e-9;
}

}  // namespace lpsgd
