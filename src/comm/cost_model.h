// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_COST_MODEL_H_
#define LPSGD_COMM_COST_MODEL_H_

#include <cstdint>

#include "machine/specs.h"

namespace lpsgd {

// Analytic timing of gradient exchanges on a simulated machine. All
// returned values are virtual seconds; byte counts are what a rank's full
// (encoded) gradient occupies on the wire. See DESIGN.md ("Substitutions")
// for the calibration methodology.
class CommCostModel {
 public:
  explicit CommCostModel(MachineSpec machine);

  const MachineSpec& machine() const { return machine_; }

  // Effective bandwidths (bytes/second) with `k` GPUs sharing the fabric.
  double MpiBandwidthBytesPerSec(int k) const;
  double NcclBandwidthBytesPerSec(int k) const;

  // MPI reduce-and-broadcast (Section 2.4.1) of a gradient whose encoded
  // form occupies `encoded_bytes` per rank, sent as `messages`
  // point-to-point messages. Includes the CNTK host-staging copies.
  double MpiExchangeSeconds(int64_t encoded_bytes, int64_t messages,
                            int k) const;

  // NCCL ring allreduce (Section 2.4.2) of `payload_bytes` per rank across
  // `collectives` collective calls.
  double NcclAllReduceSeconds(int64_t payload_bytes, int64_t collectives,
                              int k) const;

  // GPU-side quantize (or unquantize) kernel time for one pass over
  // `elements` values grouped into `chunks` independently-scaled chunks.
  double QuantKernelSeconds(int64_t elements, int64_t chunks) const;

 private:
  MachineSpec machine_;
};

}  // namespace lpsgd

#endif  // LPSGD_COMM_COST_MODEL_H_
