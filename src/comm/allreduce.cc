// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/allreduce.h"

#include <utility>

#include "base/rng.h"
#include "comm/mpi_reduce_bcast.h"
#include "comm/nccl_ring.h"
#include "comm/retry.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace lpsgd {
namespace {

// Transparent observer between the retry wrapper and the engine/decorator
// stack: every non-OK AllReduce from below files a flight-recorder dump
// (exactly once per failure — the retry layer above re-attempts without
// re-reporting, and adds its own dump only for the deadline overruns it
// synthesizes itself). Successful exchanges leave a breadcrumb record.
class FlightRecordingAggregator : public GradientAggregator {
 public:
  explicit FlightRecordingAggregator(
      std::unique_ptr<GradientAggregator> inner)
      : inner_(std::move(inner)) {}

  std::string Name() const override { return inner_->Name(); }
  int num_ranks() const override { return inner_->num_ranks(); }
  void CheckpointExchangeState() override {
    inner_->CheckpointExchangeState();
  }
  void RollbackExchangeState() override { inner_->RollbackExchangeState(); }
  void ExportExchangeState(
      std::vector<std::vector<float>>* state) const override {
    inner_->ExportExchangeState(state);
  }
  [[nodiscard]] Status ImportExchangeState(
      const std::vector<std::vector<float>>& state) override {
    return inner_->ImportExchangeState(state);
  }

  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override {
    StatusOr<CommStats> result = inner_->AllReduce(slots, iteration);
    if (!obs::FlightRecorderEnabled()) return result;
    if (result.ok()) {
      obs::FlightRecorder::Global().Record(
          iteration, /*phase=*/-1, /*matrix=*/-1, /*rank=*/-1,
          /*wall_seconds=*/0.0, result.value().TotalSeconds(),
          "exchange_ok");
    } else {
      obs::FlightRecorder::Global().OnExchangeFailure(result.status(),
                                                      iteration);
    }
    return result;
  }

 private:
  std::unique_ptr<GradientAggregator> inner_;
};

}  // namespace

std::string CommPrimitiveName(CommPrimitive primitive) {
  return primitive == CommPrimitive::kMpi ? "MPI" : "NCCL";
}

double RetryBackoffSeconds(const ExchangeRetryOptions& options, int attempt) {
  double backoff = options.backoff_base_seconds;
  for (int i = 1; i < attempt; ++i) backoff *= 2.0;
  return backoff;
}

StatusOr<std::unique_ptr<GradientAggregator>> CreateAggregator(
    CommPrimitive primitive, int num_ranks, const CodecSpec& codec,
    const MachineSpec& machine, const ExecutionContext& execution) {
  if (primitive == CommPrimitive::kMpi) {
    LPSGD_ASSIGN_OR_RETURN(auto aggregator,
                           MpiReduceBcastAggregator::Create(
                               num_ranks, codec, machine, execution));
    return std::unique_ptr<GradientAggregator>(std::move(aggregator));
  }
  LPSGD_ASSIGN_OR_RETURN(
      auto aggregator,
      NcclRingAggregator::Create(num_ranks, codec, machine, execution));
  return std::unique_ptr<GradientAggregator>(std::move(aggregator));
}

StatusOr<std::unique_ptr<GradientAggregator>> CreateAggregator(
    CommPrimitive primitive, int num_ranks, const CodecSpec& codec,
    const MachineSpec& machine, const ExecutionContext& execution,
    const ExchangeRetryOptions& retry,
    const AggregatorDecorator& decorator) {
  LPSGD_ASSIGN_OR_RETURN(
      std::unique_ptr<GradientAggregator> aggregator,
      CreateAggregator(primitive, num_ranks, codec, machine, execution));
  if (decorator) {
    LPSGD_ASSIGN_OR_RETURN(aggregator, decorator(std::move(aggregator)));
  }
  // Stacked below the retry loop so each failed attempt — injected or real
  // — produces its own dump before being retried.
  aggregator = std::make_unique<FlightRecordingAggregator>(
      std::move(aggregator));
  if (retry.enabled()) {
    LPSGD_ASSIGN_OR_RETURN(
        aggregator, RetryingAggregator::Create(std::move(aggregator), retry));
  }
  return aggregator;
}

void CommStats::Add(const CommStats& other) {
  comm_seconds += other.comm_seconds;
  encode_seconds += other.encode_seconds;
  wire_bytes += other.wire_bytes;
  raw_bytes += other.raw_bytes;
  messages += other.messages;
}

double CommStats::CompressionRatio() const {
  // Guard the zero denominator (no exchange yet, or byte accounting
  // disabled): 1.0 means "no compression observed", never inf/NaN.
  if (wire_bytes <= 0) return 1.0;
  return static_cast<double>(raw_bytes) / static_cast<double>(wire_bytes);
}

namespace comm_internal {

void RecordAllReduceStats(const CommStats& stats) {
  if (!obs::MetricsEnabled()) return;
  obs::Count("comm/allreduce_calls");
  obs::Count("comm/wire_bytes", stats.wire_bytes);
  obs::Count("comm/raw_bytes", stats.raw_bytes);
  obs::Count("comm/messages", stats.messages);
  obs::Observe("comm/virtual_comm_seconds", stats.comm_seconds);
  obs::Observe("comm/virtual_encode_seconds", stats.encode_seconds);
}

namespace {

// Per-(iteration, matrix) counter both stages hash: golden-ratio spreading
// of the iteration keeps consecutive iterations' counters far apart.
uint64_t ExchangeCounter(int64_t iteration, int64_t matrix) {
  return static_cast<uint64_t>(iteration) * 0x9e3779b9ULL +
         static_cast<uint64_t>(matrix);
}

}  // namespace

uint64_t ExchangeRankTag(int64_t iteration, int64_t matrix, int rank) {
  return HashCounter(ExchangeCounter(iteration, matrix),
                     static_cast<uint64_t>(rank));
}

uint64_t ExchangeAggregateTag(int64_t iteration, int64_t matrix, int owner) {
  return HashCounter(ExchangeCounter(iteration, matrix),
                     0xa66e6a7eULL + static_cast<uint64_t>(owner));
}

}  // namespace comm_internal

}  // namespace lpsgd
