// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/allreduce.h"

namespace lpsgd {

void CommStats::Add(const CommStats& other) {
  comm_seconds += other.comm_seconds;
  encode_seconds += other.encode_seconds;
  wire_bytes += other.wire_bytes;
  raw_bytes += other.raw_bytes;
  messages += other.messages;
}

double CommStats::CompressionRatio() const {
  if (wire_bytes == 0) return 1.0;
  return static_cast<double>(raw_bytes) / static_cast<double>(wire_bytes);
}

}  // namespace lpsgd
