// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_ALLREDUCE_H_
#define LPSGD_COMM_ALLREDUCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "base/thread_pool.h"
#include "machine/specs.h"
#include "quant/codec.h"
#include "tensor/shape.h"

namespace lpsgd {

// Which collective engine moves the gradients (Section 2.4): CNTK's MPI
// reduce-and-broadcast or the NCCL ring. (Historically declared in
// sim/perf_model.h, which still re-exports it via this header.)
enum class CommPrimitive { kMpi, kNccl };

// "MPI" or "NCCL".
std::string CommPrimitiveName(CommPrimitive primitive);

// Accounting for one (or many accumulated) gradient exchanges.
struct CommStats {
  double comm_seconds = 0.0;    // virtual wire + staging + latency time
  double encode_seconds = 0.0;  // virtual quantize/unquantize kernel time
  int64_t wire_bytes = 0;       // encoded bytes of one rank's full gradient
  int64_t raw_bytes = 0;        // fp32 bytes of one rank's full gradient
  int64_t messages = 0;

  void Add(const CommStats& other);
  double TotalSeconds() const { return comm_seconds + encode_seconds; }
  // Compression ratio achieved on the wire (raw / encoded). Defined for
  // empty accounting: returns 1.0 when no bytes were sent yet.
  double CompressionRatio() const;
};

namespace comm_internal {

// Flushes one AllReduce call's accounting into the comm/* metrics of the
// global registry (comm/allreduce_calls, comm/wire_bytes, comm/raw_bytes,
// comm/messages, comm/virtual_{comm,encode}_seconds). No-op while the
// registry is disabled. Both aggregation engines call this so their
// reports stay comparable.
void RecordAllReduceStats(const CommStats& stats);

// Stochastic-tag derivation for the MPI exchange's two quantization
// stages. Both hash the same per-(iteration, matrix) counter — iteration
// is spread by the 64-bit golden ratio so consecutive iterations land far
// apart — with a stage-distinct stream index, giving every codec call in a
// run an independent, schedule-invariant random stream. These formulas are
// wire-format-stable: changing them changes every stochastic codec's
// encoded bytes (and thus the checkpoint/determinism goldens).
//
// Stage 1: rank `rank` encodes its local gradient for matrix `matrix`.
uint64_t ExchangeRankTag(int64_t iteration, int64_t matrix, int rank);
// Stage 2: owner rank `owner` re-encodes the summed aggregate. The
// 0xa66e6a7e stream offset keeps owner streams disjoint from the rank
// streams of stage 1 (ranks are < 2^31, well under the offset).
uint64_t ExchangeAggregateTag(int64_t iteration, int64_t matrix, int owner);

}  // namespace comm_internal

// One gradient matrix as seen by the aggregation engine: every rank's
// local gradient buffer (all the same shape) plus, for error-feedback
// codecs, every rank's persistent residual buffer.
struct MatrixSlot {
  Shape quant_shape;                        // CNTK quantization view
  std::vector<float*> rank_grads;           // K buffers, element_count each
  std::vector<std::vector<float>*> rank_errors;  // K residuals (may be empty)
  // Policy decision: false sends this matrix through the full-precision
  // pipeline regardless of the configured codec (small-matrix bypass).
  bool quantized = true;
};

// Synchronous gradient aggregation: after AllReduce, every rank's buffer
// holds the SUM over ranks of the (possibly quantization-approximated)
// gradients. Implementations move real bytes between rank buffers and
// charge virtual time through a CommCostModel.
class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;

  virtual std::string Name() const = 0;

  // `iteration` seeds the stochastic codecs so runs are reproducible.
  // Contract with the retry layer: on a non-OK return the aggregator's
  // internal persistent state (e.g. owner-side aggregation residuals) is
  // unchanged — implementations restore it before returning. Caller-owned
  // slot buffers (rank_grads, rank_errors) may be partially written; the
  // retry wrapper snapshots and restores those.
  virtual StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                        int64_t iteration) = 0;

  virtual int num_ranks() const = 0;

  // Transaction hooks for the retry layer. CheckpointExchangeState saves
  // the aggregator's persistent cross-call state; RollbackExchangeState
  // restores the last checkpoint. The retry wrapper invokes rollback when
  // it discards a *successful* exchange (timeout overrun) before
  // re-attempting it — the failure paths roll back internally per the
  // AllReduce contract above. Stateless aggregators keep these no-ops.
  virtual void CheckpointExchangeState() {}
  virtual void RollbackExchangeState() {}

  // Durable-checkpoint hooks for src/ckpt: an aggregator with persistent
  // cross-call state (the MPI owner-side aggregation residuals) exports a
  // copy as one flat float vector per matrix for serialization, and
  // re-imports it on restore-from-disk so a restored run replays
  // bit-identically to one that never stopped. Stateless engines keep the
  // defaults: export nothing, accept only an empty import.
  virtual void ExportExchangeState(
      std::vector<std::vector<float>>* state) const {
    state->clear();
  }
  [[nodiscard]] virtual Status ImportExchangeState(
      const std::vector<std::vector<float>>& state) {
    if (!state.empty()) {
      return FailedPreconditionError(
          "aggregator is stateless but checkpoint carries exchange state");
    }
    return OkStatus();
  }
};

// Per-exchange fault-tolerance budget (DESIGN.md "Fault model and
// recovery"): when enabled, AllReduce calls are wrapped in a retry loop
// with exponential backoff and an optional virtual-time deadline.
struct ExchangeRetryOptions {
  // Maximum number of re-attempts after the first try. 0 disables the
  // retry loop (but timeout_seconds alone still enables the wrapper).
  int max_retries = 0;
  // Virtual-time budget for one exchange; an attempt whose TotalSeconds()
  // exceeds it is discarded and retried as if it had failed. 0 = no
  // deadline.
  double timeout_seconds = 0.0;
  // Backoff penalty charged to virtual comm time before retry r (1-based):
  // backoff_base_seconds * 2^(r-1).
  double backoff_base_seconds = 0.001;

  bool enabled() const { return max_retries > 0 || timeout_seconds > 0.0; }
};

// Backoff penalty before retry `attempt` (1-based):
// backoff_base_seconds * 2^(attempt-1). Shared by the retrying aggregator
// and the durable-checkpoint writer so both layers charge the same
// schedule for transient failures.
double RetryBackoffSeconds(const ExchangeRetryOptions& options, int attempt);

// Hook for layering a decorator (e.g. fault::FaultInjectingAggregator)
// between the retry wrapper and the real engine built by CreateAggregator.
using AggregatorDecorator =
    std::function<StatusOr<std::unique_ptr<GradientAggregator>>(
        std::unique_ptr<GradientAggregator>)>;

// The single aggregator entry point: builds the engine for `primitive`
// with `num_ranks` simulated GPUs exchanging gradients encoded per
// `codec`, timed on `machine`, running host work on `execution`'s pool
// (ExecutionContext::Serial() reproduces the historical sequential
// order — as does any thread count; see DESIGN.md "Execution model").
// The concrete classes keep a 4-argument Create for call sites that need
// the concrete type (test seams like set_wire_tamper); everything else
// goes through here.
[[nodiscard]] StatusOr<std::unique_ptr<GradientAggregator>> CreateAggregator(
    CommPrimitive primitive, int num_ranks, const CodecSpec& codec,
    const MachineSpec& machine, const ExecutionContext& execution);

// Fault-tolerant variant: builds the engine, applies `decorator` (fault
// injection layer; may be empty), inserts the flight-recorder observer,
// then wraps the result in the retrying aggregator when `retry.enabled()`.
// Stacking order — the retry loop is outermost so injected faults are
// retried like real ones, and the observer sits below it so every failed
// attempt files exactly one flight-recorder dump (obs/profile.h):
//   Retrying(Observer(decorator(engine)))
[[nodiscard]] StatusOr<std::unique_ptr<GradientAggregator>> CreateAggregator(
    CommPrimitive primitive, int num_ranks, const CodecSpec& codec,
    const MachineSpec& machine, const ExecutionContext& execution,
    const ExchangeRetryOptions& retry,
    const AggregatorDecorator& decorator = nullptr);

}  // namespace lpsgd

#endif  // LPSGD_COMM_ALLREDUCE_H_
