// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_RETRY_H_
#define LPSGD_COMM_RETRY_H_

#include <memory>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "obs/profile.h"

namespace lpsgd {

// Retry-with-exponential-backoff wrapper around any GradientAggregator
// (DESIGN.md "Fault model and recovery"). Each AllReduce call becomes an
// atomic transaction:
//
//   - Before the first attempt the caller-visible slot state (rank_grads
//     and rank_errors) is snapshotted into persistent member buffers, and
//     the inner aggregator checkpoints its own cross-call state.
//   - A failed attempt with a transient code (UNAVAILABLE,
//     DEADLINE_EXCEEDED, DATA_LOSS, INTERNAL) restores the snapshot, rolls
//     the inner aggregator back, charges the backoff penalty
//     (backoff_base_seconds * 2^(attempt-1)) to virtual comm time, bumps
//     comm/retries, and re-runs with the same `iteration` — so stochastic
//     codec tags replay and the retried exchange is bit-identical.
//   - A successful attempt whose TotalSeconds() exceeds timeout_seconds is
//     discarded the same way (DEADLINE_EXCEEDED), except its own virtual
//     duration is also charged.
//   - Non-transient codes (e.g. ABORTED: a crashed rank) and exhausted
//     budgets restore the snapshot and return the error, leaving every
//     buffer exactly as it was before the call.
class RetryingAggregator : public GradientAggregator {
 public:
  [[nodiscard]] static StatusOr<std::unique_ptr<RetryingAggregator>> Create(
      std::unique_ptr<GradientAggregator> inner, ExchangeRetryOptions options);

  std::string Name() const override;
  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override;
  int num_ranks() const override { return inner_->num_ranks(); }
  void CheckpointExchangeState() override {
    inner_->CheckpointExchangeState();
  }
  void RollbackExchangeState() override { inner_->RollbackExchangeState(); }
  void ExportExchangeState(
      std::vector<std::vector<float>>* state) const override {
    inner_->ExportExchangeState(state);
  }
  [[nodiscard]] Status ImportExchangeState(
      const std::vector<std::vector<float>>& state) override {
    return inner_->ImportExchangeState(state);
  }

  GradientAggregator* inner() const { return inner_.get(); }
  const ExchangeRetryOptions& options() const { return options_; }

 private:
  RetryingAggregator(std::unique_ptr<GradientAggregator> inner,
                     ExchangeRetryOptions options)
      : inner_(std::move(inner)), options_(options) {}

  // Folds the accumulated retry-phase spans (plus `penalty_seconds` of
  // virtual backoff time) into the global profiler and clears the scratch.
  void FoldPhases(double penalty_seconds);
  // Copies every slot's rank_grads / rank_errors contents into the
  // persistent snapshot buffers (capacity-reusing; steady-state calls
  // allocate nothing once the buffers have grown to the model size).
  void SnapshotSlots(const std::vector<MatrixSlot>& slots);
  // Restores the slot contents from the last SnapshotSlots call.
  void RestoreSlots(std::vector<MatrixSlot>* slots) const;
  // Purity exemptions: the snapshot buffers grow once to the model size
  // and are capacity-reused afterwards (the comment on SnapshotSlots is
  // the contract); Restore only runs on the retry path after a failure.
  LPSGD_HOT_CALLEE_OK(SnapshotSlots);
  LPSGD_HOT_CALLEE_OK(RestoreSlots);

  std::unique_ptr<GradientAggregator> inner_;
  ExchangeRetryOptions options_;
  // grad_snapshot_ / error_snapshot_: flattened [matrix * ranks + rank]
  // copies of the caller-owned buffers, reused across calls.
  std::vector<std::vector<float>> grad_snapshot_;
  std::vector<std::vector<float>> error_snapshot_;
  // Profiler scratch for the snapshot/restore copies (wall) and the
  // backoff penalty (virtual), folded into the open step per call.
  // AllReduce calls are serial, so one block suffices.
  obs::PhaseTimes phases_;
};

}  // namespace lpsgd

#endif  // LPSGD_COMM_RETRY_H_
