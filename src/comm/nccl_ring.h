// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_NCCL_RING_H_
#define LPSGD_COMM_NCCL_RING_H_

#include <memory>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "comm/cost_model.h"
#include "obs/profile.h"
#include "quant/codec.h"

namespace lpsgd {

// NCCL-style ring allreduce (Section 2.4.2): reduce-scatter followed by
// allgather around a ring, with payloads split into slices.
//
// NCCL's sum collective only supports full precision, so the arithmetic
// here is always an exact fp32 ring sum. When a low-precision codec spec
// is supplied, this aggregator reproduces the paper's "NCCL simulation"
// (Section 4.4): the number of bytes charged to the wire — and the
// quantize/unquantize kernel time — correspond to the codec, while values
// remain exact. This is precisely how Figures 7/9/11 were produced.
class NcclRingAggregator : public GradientAggregator {
 public:
  // Creates an aggregator for `num_ranks` simulated GPUs, timed on
  // `machine`, with the per-segment ring arithmetic running on
  // `execution`.
  [[nodiscard]] static StatusOr<std::unique_ptr<NcclRingAggregator>> Create(
      int num_ranks, const CodecSpec& spec, const MachineSpec& machine,
      const ExecutionContext& execution);

  // Deprecated: serial-context wrapper kept for older call sites; prefer
  // CreateAggregator (comm/allreduce.h).
  [[nodiscard]] static StatusOr<std::unique_ptr<NcclRingAggregator>> Create(
      int num_ranks, const CodecSpec& spec, const MachineSpec& machine);

  std::string Name() const override { return "NCCL ring allreduce"; }
  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override;
  int num_ranks() const override { return num_ranks_; }

 private:
  NcclRingAggregator(int num_ranks, CodecSpec spec,
                     std::unique_ptr<GradientCodec> codec,
                     const MachineSpec& machine, ExecutionContext execution);

  int num_ranks_;
  CodecSpec spec_;
  std::unique_ptr<GradientCodec> codec_;  // payload sizing only
  CommCostModel cost_model_;
  ExecutionContext exec_;
  // Per-thread-pool-slot profiler scratch for the ring loop's sum and
  // allgather spans; merged serially after the exchange (obs/profile.h).
  std::vector<obs::PhaseTimes> slot_phases_;
};

}  // namespace lpsgd

#endif  // LPSGD_COMM_NCCL_RING_H_
