// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_COMM_NCCL_RING_H_
#define LPSGD_COMM_NCCL_RING_H_

#include <memory>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "comm/cost_model.h"
#include "obs/profile.h"
#include "quant/codec.h"
#include "quant/workspace.h"

namespace lpsgd {

// NCCL-style ring allreduce (Section 2.4.2): reduce-scatter followed by
// allgather around a ring, with payloads split into slices.
//
// NCCL's sum collective only supports full precision, so the arithmetic
// here is always an exact fp32 ring sum. When a low-precision dense codec
// spec is supplied, this aggregator reproduces the paper's "NCCL
// simulation" (Section 4.4): the number of bytes charged to the wire —
// and the quantize/unquantize kernel time — correspond to the codec,
// while values remain exact. This is precisely how Figures 7/9/11 were
// produced.
//
// Sparse codecs (codec->SparseCount() > 0, i.e. TopK) cannot ride the
// ring at all — a ring sum needs dense operands — so they take the real
// wire path instead: every rank encodes its gradient, all k blobs are
// sparse-decoded, and the aggregate is built by scatter-adding the
// (index, value) runs in rank order, NCCL-allgather style (each rank
// receives every other rank's blob).
class NcclRingAggregator : public GradientAggregator {
 public:
  // Creates an aggregator for `num_ranks` simulated GPUs, timed on
  // `machine`, with the per-segment ring arithmetic running on
  // `execution`.
  [[nodiscard]] static StatusOr<std::unique_ptr<NcclRingAggregator>> Create(
      int num_ranks, const CodecSpec& spec, const MachineSpec& machine,
      const ExecutionContext& execution);

  std::string Name() const override { return "NCCL ring allreduce"; }
  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override;
  int num_ranks() const override { return num_ranks_; }

 private:
  NcclRingAggregator(int num_ranks, CodecSpec spec,
                     std::unique_ptr<GradientCodec> codec,
                     const MachineSpec& machine, ExecutionContext execution);

  int num_ranks_;
  CodecSpec spec_;
  // Payload sizing for the dense simulation; the full encode/decode pair
  // for the sparse wire path.
  std::unique_ptr<GradientCodec> codec_;
  CommCostModel cost_model_;
  ExecutionContext exec_;
  // Codec scratch, one per thread-pool slot (ThreadPool::CurrentSlot());
  // its embedded phase scratch also serves the ring loop's sum and
  // allgather spans, merged serially after the exchange (obs/profile.h).
  std::vector<CodecWorkspace> workspaces_;
  // Sparse wire path scratch, grown once and reused (zero-allocation
  // steady state, like the MPI aggregator's buffers):
  // per-(matrix, rank) decoded (index, value) runs...
  std::vector<std::vector<std::vector<uint32_t>>> sparse_indices_;
  std::vector<std::vector<std::vector<float>>> sparse_values_;
  // ...and the per-matrix scatter-add accumulator.
  std::vector<std::vector<float>> aggregates_;
};

}  // namespace lpsgd

#endif  // LPSGD_COMM_NCCL_RING_H_
