// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/mpi_reduce_bcast.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "base/simd/elementwise.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace lpsgd {

StatusOr<std::unique_ptr<MpiReduceBcastAggregator>>
MpiReduceBcastAggregator::Create(int num_ranks, const CodecSpec& spec,
                                 const MachineSpec& machine,
                                 const ExecutionContext& execution) {
  if (num_ranks < 1) {
    return InvalidArgumentError("num_ranks must be >= 1");
  }
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> codec,
                         spec.Create());
  return std::unique_ptr<MpiReduceBcastAggregator>(
      new MpiReduceBcastAggregator(num_ranks, spec, std::move(codec),
                                   machine, execution));
}

MpiReduceBcastAggregator::MpiReduceBcastAggregator(
    int num_ranks, CodecSpec spec, std::unique_ptr<GradientCodec> codec,
    const MachineSpec& machine, ExecutionContext execution)
    : num_ranks_(num_ranks),
      spec_(std::move(spec)),
      codec_(std::move(codec)),
      cost_model_(machine),
      exec_(std::move(execution)),
      // One codec workspace per thread-pool slot: two threads executing
      // tasks of the same ParallelFor batch never share a slot, so the
      // scratch is race-free (see ThreadPool::CurrentSlot()).
      workspaces_(static_cast<size_t>(exec_.threads())) {}

// Purity exemptions (tools/analyze/lpsgd_analyze): the checkpoint buffers
// grow once to the model size and are capacity-reused on later calls, and
// rollback only runs after a failed exchange — neither allocates on the
// fault-free steady-state path.
LPSGD_HOT_CALLEE_OK(CheckpointExchangeState);
LPSGD_HOT_CALLEE_OK(RollbackExchangeState);

void MpiReduceBcastAggregator::CheckpointExchangeState() {
  if (aggregate_errors_snapshot_.size() < aggregate_errors_.size()) {
    aggregate_errors_snapshot_.resize(aggregate_errors_.size());
  }
  for (size_t m = 0; m < aggregate_errors_.size(); ++m) {
    aggregate_errors_snapshot_[m].assign(aggregate_errors_[m].begin(),
                                         aggregate_errors_[m].end());
  }
  aggregate_errors_snapshot_count_ = aggregate_errors_.size();
}

void MpiReduceBcastAggregator::RollbackExchangeState() {
  const size_t count =
      std::min(aggregate_errors_snapshot_count_, aggregate_errors_.size());
  for (size_t m = 0; m < count; ++m) {
    aggregate_errors_[m].assign(aggregate_errors_snapshot_[m].begin(),
                                aggregate_errors_snapshot_[m].end());
  }
  // Residuals first sized after the checkpoint hold partial state from the
  // failed exchange; empty them so the next call's setup re-zeroes them.
  for (size_t m = count; m < aggregate_errors_.size(); ++m) {
    aggregate_errors_[m].clear();
  }
}

void MpiReduceBcastAggregator::ExportExchangeState(
    std::vector<std::vector<float>>* state) const {
  *state = aggregate_errors_;
}

Status MpiReduceBcastAggregator::ImportExchangeState(
    const std::vector<std::vector<float>>& state) {
  aggregate_errors_ = state;
  aggregate_errors_snapshot_count_ = 0;
  return OkStatus();
}

StatusOr<CommStats> MpiReduceBcastAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t iteration) {
  CHECK(slots != nullptr);
  obs::ScopedTimer wall_timer("comm/allreduce_wall_seconds");
  obs::TraceSpan allreduce_span("mpi_reduce_bcast/allreduce", "comm");
  // Internal-state transaction (comm/allreduce.h): any error return below
  // rolls the aggregation residuals back to this checkpoint.
  {
    obs::PhaseTimer checkpoint_timer(&workspaces_[0].phases,
                                     obs::kPhaseRetry);
    CheckpointExchangeState();
  }
  const int k = num_ranks_;
  const int64_t num_matrices = static_cast<int64_t>(slots->size());
  if (aggregate_errors_.size() < slots->size()) {
    aggregate_errors_.resize(slots->size());
  }

  const bool identity_codec = spec_.kind == CodecKind::kFullPrecision;

  // Per-matrix accounting and scratch, merged in matrix order at the end:
  // totals (including float encode_seconds sums) are byte-identical at any
  // thread count because the merge order is fixed. All of it lives in
  // member buffers that keep their capacity across calls (grown entries
  // are never dropped), so steady-state calls allocate nothing.
  // The serial setup below (scratch sizing, first-call allocations,
  // residual zeroing) is exchange staging: attribute it so a cold first
  // step keeps its breakdown coverage.
  {
    obs::PhaseTimer setup_timer(&workspaces_[0].phases, obs::kPhaseSum);
    per_matrix_.assign(slots->size(), CommStats{});
    rank_blob_bytes_.assign(slots->size(), 0);
    if (decoded_.size() < slots->size()) decoded_.resize(slots->size());
    if (sparse_indices_.size() < slots->size()) {
      sparse_indices_.resize(slots->size());
    }
    if (sparse_values_.size() < slots->size()) {
      sparse_values_.resize(slots->size());
    }
    if (aggregates_.size() < slots->size()) {
      aggregates_.resize(slots->size());
    }
    if (bcasts_.size() < slots->size()) bcasts_.resize(slots->size());
    if (fp_sums_.size() < slots->size()) fp_sums_.resize(slots->size());

    for (int64_t m = 0; m < num_matrices; ++m) {
      MatrixSlot& slot = (*slots)[static_cast<size_t>(m)];
      CHECK_EQ(static_cast<int>(slot.rank_grads.size()), k);
      if (slot.quantized && !identity_codec) {
        const bool sparse = codec_->SparseCount(slot.quant_shape) > 0;
        auto& per_rank = sparse ? sparse_values_[static_cast<size_t>(m)]
                                : decoded_[static_cast<size_t>(m)];
        if (per_rank.size() < static_cast<size_t>(k)) {
          per_rank.resize(static_cast<size_t>(k));
        }
        if (sparse &&
            sparse_indices_[static_cast<size_t>(m)].size() <
                static_cast<size_t>(k)) {
          sparse_indices_[static_cast<size_t>(m)].resize(
              static_cast<size_t>(k));
        }
      }
      // Size the owner-side aggregation residual here, in the serial
      // setup, so the stage-2 exchange lambda below stays allocation-free
      // (it is an LPSGD_HOT_PATH region; tools/lint enforces this).
      if (slot.quantized && !identity_codec && codec_->UsesErrorFeedback()) {
        auto& residual = aggregate_errors_[static_cast<size_t>(m)];
        const auto n =
            static_cast<size_t>(slot.quant_shape.element_count());
        if (residual.size() != n) residual.assign(n, 0.0f);
      }
    }
  }

  // Stage 1 (parallel over (matrix, rank)): every rank encodes its local
  // gradient, folding in its error-feedback residual, and the blob is
  // decoded into that rank's scratch buffer. Stochastic tags depend only
  // on (iteration, m, r), residuals are per (m, r), and scratch buffers
  // are disjoint — scheduling cannot change a single bit.
  const uint64_t reduce_span =
      obs::Tracer::Global().Begin("mpi_reduce_bcast/reduce", "comm");
  const Status reduce_status = exec_.ParallelFor(
      0, num_matrices * k, LPSGD_HOT_PATH [&](int64_t task) -> Status {
        const size_t m = static_cast<size_t>(task / k);
        const size_t r = static_cast<size_t>(task % k);
        MatrixSlot& slot = (*slots)[m];
        if (!slot.quantized || identity_codec) return OkStatus();
        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), workspaces_.size());
        CodecWorkspace& ws = workspaces_[static_cast<size_t>(slot_id)];
        const int64_t n = slot.quant_shape.element_count();
        const uint64_t tag = comm_internal::ExchangeRankTag(
            iteration, static_cast<int64_t>(m), static_cast<int>(r));
        std::vector<float>* error =
            codec_->UsesErrorFeedback() ? slot.rank_errors[r] : nullptr;
        codec_->Encode(slot.rank_grads[r], slot.quant_shape, tag, error, &ws,
                       &ws.blob);
        if (wire_tamper_) {
          wire_tamper_(iteration, static_cast<int64_t>(m),
                       static_cast<int>(r), ws.blob.data(),
                       static_cast<int64_t>(ws.blob.size()));
        }
        if (r == 0) {  // blob sizes are shape-determined, uniform per rank
          rank_blob_bytes_[m] = static_cast<int64_t>(ws.blob.size());
        }
        const int64_t sparse_count = codec_->SparseCount(slot.quant_shape);
        if (sparse_count > 0) {
          // Sparse wire form: decode the (index, value) runs directly; the
          // owner scatter-adds them in stage 2 without densifying k blobs.
          uint32_t* indices;
          float* values;
          {
            // First-call growth of the decode scratch is staging work.
            obs::PhaseTimer scratch_timer(&ws.phases, obs::kPhaseSum);
            indices = quant_internal::EnsureSize(
                &sparse_indices_[m][r], static_cast<size_t>(sparse_count));
            values = quant_internal::EnsureSize(
                &sparse_values_[m][r], static_cast<size_t>(sparse_count));
          }
          LPSGD_RETURN_IF_ERROR(codec_->DecodeSparse(
              ws.blob.data(), static_cast<int64_t>(ws.blob.size()),
              slot.quant_shape, &ws, indices, values));
          return OkStatus();
        }
        float* out;
        {
          // First-call growth of the decode scratch is staging work.
          obs::PhaseTimer scratch_timer(&ws.phases, obs::kPhaseSum);
          out = quant_internal::EnsureSize(&decoded_[m][r],
                                           static_cast<size_t>(n));
        }
        LPSGD_RETURN_IF_ERROR(
            codec_->Decode(ws.blob.data(), static_cast<int64_t>(ws.blob.size()),
                           slot.quant_shape, &ws, out));
        return OkStatus();
      });
  if (!reduce_status.ok()) {
    obs::Tracer::Global().End(reduce_span);
    RollbackExchangeState();
    // Partial phase scratch from the failed attempt must not leak into the
    // next (retried) exchange's breakdown.
    for (CodecWorkspace& ws : workspaces_) ws.phases.Clear();
    return reduce_status;
  }
  int64_t reduce_bytes = 0;
  for (int64_t bytes : rank_blob_bytes_) reduce_bytes += bytes * k;
  obs::Tracer::Global().EndWithBytes(reduce_span, reduce_bytes);

  // Stage 2 (parallel over matrices): the owner sums the decoded blobs in
  // rank order (fixed fp summation order), re-encodes the aggregate with
  // its persistent residual, and broadcasts; every rank decodes. Bypassed
  // matrices travel the full-precision reduce+broadcast here instead.
  const uint64_t bcast_span =
      obs::Tracer::Global().Begin("mpi_reduce_bcast/broadcast", "comm");
  const Status bcast_status = exec_.ParallelFor(
      0, num_matrices, LPSGD_HOT_PATH [&](int64_t mi) -> Status {
        const size_t m = static_cast<size_t>(mi);
        MatrixSlot& slot = (*slots)[m];
        obs::TraceSpan matrix_span("mpi_reduce_bcast/matrix", "comm");
        const int64_t n = slot.quant_shape.element_count();
        const int64_t raw_bytes = n * static_cast<int64_t>(sizeof(float));
        CommStats& stats = per_matrix_[m];
        stats.raw_bytes += raw_bytes;

        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), workspaces_.size());
        CodecWorkspace& ws = workspaces_[static_cast<size_t>(slot_id)];

        const bool quantize = slot.quantized && !identity_codec;
        if (!quantize) {
          // Full-precision pipeline: plain reduce + broadcast of fp32 data
          // through the matrix's persistent double accumulator.
          // Each sum[i] accumulates over ranks in fixed order; within one
          // rank pass the elements are independent, so the widened add and
          // the fp32 store dispatch to the elementwise SIMD kernels without
          // changing any rounding.
          const ElementwiseKernels& elementwise = ActiveElementwiseKernels();
          double* sum;
          {
            obs::PhaseTimer sum_timer(&ws.phases, obs::kPhaseSum);
            sum = quant_internal::EnsureSize(&fp_sums_[m],
                                             static_cast<size_t>(n));
            std::fill(sum, sum + n, 0.0);
            for (int r = 0; r < k; ++r) {
              elementwise.accumulate_f64(
                  sum, slot.rank_grads[static_cast<size_t>(r)], n);
            }
          }
          {
            obs::PhaseTimer wire_timer(&ws.phases, obs::kPhaseWire);
            for (int r = 0; r < k; ++r) {
              elementwise.store_f64_as_f32(
                  sum, slot.rank_grads[static_cast<size_t>(r)], n);
            }
          }
          stats.wire_bytes += raw_bytes;
          stats.messages += 2;
          matrix_span.set_bytes(raw_bytes);
          return OkStatus();
        }

        const int64_t sparse_count = codec_->SparseCount(slot.quant_shape);
        float* aggregate;
        {
          obs::PhaseTimer sum_timer(&ws.phases, obs::kPhaseSum);
          aggregate = quant_internal::EnsureSize(&aggregates_[m],
                                                 static_cast<size_t>(n));
          std::fill(aggregate, aggregate + n, 0.0f);
          if (sparse_count > 0) {
            // Scatter-add the k (index, value) runs in rank order. Each
            // absent component contributes an exact 0.0f, so the result is
            // element-equal to the dense sum at any thread count.
            for (int r = 0; r < k; ++r) {
              const uint32_t* indices =
                  sparse_indices_[m][static_cast<size_t>(r)].data();
              const float* values =
                  sparse_values_[m][static_cast<size_t>(r)].data();
              for (int64_t i = 0; i < sparse_count; ++i) {
                aggregate[indices[i]] += values[i];
              }
            }
          } else {
            const ElementwiseKernels& elementwise =
                ActiveElementwiseKernels();
            for (int r = 0; r < k; ++r) {
              elementwise.add_assign_f32(
                  aggregate, decoded_[m][static_cast<size_t>(r)].data(), n);
            }
          }
        }

        const int owner = static_cast<int>(m) % k;
        // Residual already sized by the serial setup loop above.
        std::vector<float>* agg_error =
            codec_->UsesErrorFeedback() ? &aggregate_errors_[m] : nullptr;
        const uint64_t agg_tag = comm_internal::ExchangeAggregateTag(
            iteration, static_cast<int64_t>(m), owner);
        codec_->Encode(aggregate, slot.quant_shape, agg_tag, agg_error, &ws,
                       &ws.blob);
        if (wire_tamper_) {
          wire_tamper_(iteration, static_cast<int64_t>(m), /*rank=*/-1,
                       ws.blob.data(), static_cast<int64_t>(ws.blob.size()));
        }
        const int64_t blob_bytes = static_cast<int64_t>(ws.blob.size());
        float* bcast;
        {
          obs::PhaseTimer scratch_timer(&ws.phases, obs::kPhaseSum);
          bcast = quant_internal::EnsureSize(&bcasts_[m],
                                             static_cast<size_t>(n));
        }
        LPSGD_RETURN_IF_ERROR(codec_->Decode(ws.blob.data(), blob_bytes,
                                             slot.quant_shape, &ws, bcast));
        {
          obs::PhaseTimer wire_timer(&ws.phases, obs::kPhaseWire);
          for (int r = 0; r < k; ++r) {
            std::memcpy(slot.rank_grads[static_cast<size_t>(r)], bcast,
                        static_cast<size_t>(n) * sizeof(float));
          }
        }

        stats.wire_bytes += blob_bytes;
        stats.messages += 2;
        matrix_span.set_bytes(blob_bytes);
        // Per-rank kernel work: encode own gradient, decode the aggregate,
        // and an amortized share of the owner-side decodes and re-encode.
        const int64_t chunks = codec_->NumChunks(slot.quant_shape);
        stats.encode_seconds +=
            3.0 * cost_model_.QuantKernelSeconds(n, chunks);
        return OkStatus();
      });
  obs::Tracer::Global().End(bcast_span);
  if (!bcast_status.ok()) {
    RollbackExchangeState();
    for (CodecWorkspace& ws : workspaces_) ws.phases.Clear();
    return bcast_status;
  }

  CommStats stats;
  for (const CommStats& matrix_stats : per_matrix_) stats.Add(matrix_stats);
  stats.comm_seconds +=
      cost_model_.MpiExchangeSeconds(stats.wire_bytes, stats.messages, k);
  allreduce_span.set_bytes(stats.wire_bytes);
  comm_internal::RecordAllReduceStats(stats);
  // Fold the per-slot phase scratch (codec encode/decode plus the sum and
  // broadcast spans above) into the profiler's open step — serially, after
  // the parallel stages, so no slot is concurrently written.
  if (obs::ProfileEnabled()) {
    for (CodecWorkspace& ws : workspaces_) {
      obs::Profiler::Global().AddPhases(ws.phases);
      ws.phases.Clear();
    }
  }
  return stats;
}

}  // namespace lpsgd
