// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/mpi_reduce_bcast.h"

#include <cstring>

#include "base/logging.h"
#include "base/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lpsgd {

StatusOr<std::unique_ptr<MpiReduceBcastAggregator>>
MpiReduceBcastAggregator::Create(int num_ranks, const CodecSpec& spec,
                                 const MachineSpec& machine) {
  if (num_ranks < 1) {
    return InvalidArgumentError("num_ranks must be >= 1");
  }
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> codec,
                         CreateCodec(spec));
  return std::unique_ptr<MpiReduceBcastAggregator>(
      new MpiReduceBcastAggregator(num_ranks, spec, std::move(codec),
                                   machine));
}

MpiReduceBcastAggregator::MpiReduceBcastAggregator(
    int num_ranks, CodecSpec spec, std::unique_ptr<GradientCodec> codec,
    const MachineSpec& machine)
    : num_ranks_(num_ranks),
      spec_(std::move(spec)),
      codec_(std::move(codec)),
      cost_model_(machine) {}

StatusOr<CommStats> MpiReduceBcastAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t iteration) {
  CHECK(slots != nullptr);
  obs::ScopedTimer wall_timer("comm/allreduce_wall_seconds");
  obs::TraceSpan allreduce_span("mpi_reduce_bcast/allreduce", "comm");
  const int k = num_ranks_;
  if (aggregate_errors_.size() < slots->size()) {
    aggregate_errors_.resize(slots->size());
  }

  CommStats stats;
  const bool identity_codec = spec_.kind == CodecKind::kFullPrecision;

  for (size_t m = 0; m < slots->size(); ++m) {
    MatrixSlot& slot = (*slots)[m];
    CHECK_EQ(static_cast<int>(slot.rank_grads.size()), k);
    obs::TraceSpan matrix_span("mpi_reduce_bcast/matrix", "comm");
    const int64_t n = slot.quant_shape.element_count();
    const int64_t raw_bytes = n * static_cast<int64_t>(sizeof(float));
    stats.raw_bytes += raw_bytes;

    const bool quantize = slot.quantized && !identity_codec;
    if (!quantize) {
      // Full-precision pipeline: plain reduce + broadcast of fp32 data.
      std::vector<double> sum(static_cast<size_t>(n), 0.0);
      for (int r = 0; r < k; ++r) {
        const float* grad = slot.rank_grads[static_cast<size_t>(r)];
        for (int64_t i = 0; i < n; ++i) sum[static_cast<size_t>(i)] += grad[i];
      }
      for (int r = 0; r < k; ++r) {
        float* grad = slot.rank_grads[static_cast<size_t>(r)];
        for (int64_t i = 0; i < n; ++i) {
          grad[i] = static_cast<float>(sum[static_cast<size_t>(i)]);
        }
      }
      stats.wire_bytes += raw_bytes;
      stats.messages += 2;
      matrix_span.set_bytes(raw_bytes);
      continue;
    }

    // Stage 1: every rank encodes with its local residual; the owner
    // decodes and sums.
    const uint64_t reduce_span =
        obs::Tracer::Global().Begin("mpi_reduce_bcast/reduce", "comm");
    const int owner = static_cast<int>(m) % k;
    std::vector<float> aggregate(static_cast<size_t>(n), 0.0f);
    std::vector<float> decoded(static_cast<size_t>(n));
    std::vector<uint8_t> blob;
    int64_t blob_bytes = 0;
    for (int r = 0; r < k; ++r) {
      const uint64_t tag =
          HashCounter(static_cast<uint64_t>(iteration) * 0x9e3779b9ULL + m,
                      static_cast<uint64_t>(r));
      std::vector<float>* error =
          codec_->UsesErrorFeedback()
              ? slot.rank_errors[static_cast<size_t>(r)]
              : nullptr;
      codec_->Encode(slot.rank_grads[static_cast<size_t>(r)],
                     slot.quant_shape, tag, error, &blob);
      blob_bytes = static_cast<int64_t>(blob.size());
      codec_->Decode(blob.data(), blob_bytes, slot.quant_shape,
                     decoded.data());
      for (int64_t i = 0; i < n; ++i) {
        aggregate[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
      }
    }

    obs::Tracer::Global().EndWithBytes(reduce_span, blob_bytes * k);

    // Stage 2: the owner re-encodes the aggregate, carrying its own
    // persistent residual, and broadcasts; every rank decodes.
    const uint64_t bcast_span =
        obs::Tracer::Global().Begin("mpi_reduce_bcast/broadcast", "comm");
    std::vector<float>* agg_error = nullptr;
    if (codec_->UsesErrorFeedback()) {
      auto& residual = aggregate_errors_[m];
      if (residual.size() != static_cast<size_t>(n)) {
        residual.assign(static_cast<size_t>(n), 0.0f);
      }
      agg_error = &residual;
    }
    const uint64_t agg_tag =
        HashCounter(static_cast<uint64_t>(iteration) * 0x9e3779b9ULL + m,
                    0xa66e6a7eULL + static_cast<uint64_t>(owner));
    codec_->Encode(aggregate.data(), slot.quant_shape, agg_tag, agg_error,
                   &blob);
    blob_bytes = static_cast<int64_t>(blob.size());
    codec_->Decode(blob.data(), blob_bytes, slot.quant_shape, decoded.data());
    for (int r = 0; r < k; ++r) {
      std::memcpy(slot.rank_grads[static_cast<size_t>(r)], decoded.data(),
                  static_cast<size_t>(n) * sizeof(float));
    }

    obs::Tracer::Global().EndWithBytes(bcast_span, blob_bytes);

    stats.wire_bytes += blob_bytes;
    stats.messages += 2;
    matrix_span.set_bytes(blob_bytes);
    // Per-rank kernel work: encode own gradient, decode the aggregate, and
    // an amortized share of the owner-side decodes and re-encode.
    const int64_t chunks = codec_->NumChunks(slot.quant_shape);
    stats.encode_seconds += 3.0 * cost_model_.QuantKernelSeconds(n, chunks);
  }

  stats.comm_seconds +=
      cost_model_.MpiExchangeSeconds(stats.wire_bytes, stats.messages, k);
  allreduce_span.set_bytes(stats.wire_bytes);
  comm_internal::RecordAllReduceStats(stats);
  return stats;
}

}  // namespace lpsgd
