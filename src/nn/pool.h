// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_POOL_H_
#define LPSGD_NN_POOL_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace lpsgd {

// Max pooling over {batch, channels, height, width} inputs with square
// windows. Remembers argmax positions for the backward pass.
class MaxPool2dLayer : public Layer {
 public:
  MaxPool2dLayer(std::string name, int window, int stride);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  int window_;
  int stride_;
  Shape cached_input_shape_;
  // Flat input index of the maximum for each output element.
  std::vector<int64_t> argmax_;
};

// Global average pooling: {batch, C, H, W} -> {batch, C}.
class GlobalAvgPoolLayer : public Layer {
 public:
  explicit GlobalAvgPoolLayer(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

// Reshapes {batch, ...} to {batch, product-of-rest}.
class FlattenLayer : public Layer {
 public:
  explicit FlattenLayer(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_POOL_H_
