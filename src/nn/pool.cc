// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/pool.h"

#include <limits>

#include "base/logging.h"
#include "tensor/ops.h"

namespace lpsgd {

MaxPool2dLayer::MaxPool2dLayer(std::string name, int window, int stride)
    : name_(std::move(name)), window_(window), stride_(stride) {
  CHECK_GT(window, 0);
  CHECK_GT(stride, 0);
}

Tensor MaxPool2dLayer::Forward(const Tensor& input, bool /*training*/) {
  CHECK_EQ(input.shape().ndim(), 4) << name_;
  cached_input_shape_ = input.shape();
  const int64_t batch = input.shape().dim(0);
  const int64_t channels = input.shape().dim(1);
  const int height = static_cast<int>(input.shape().dim(2));
  const int width = static_cast<int>(input.shape().dim(3));
  const int out_h = ConvOutputSize(height, window_, stride_, /*padding=*/0);
  const int out_w = ConvOutputSize(width, window_, stride_, /*padding=*/0);
  CHECK_GT(out_h, 0) << name_;
  CHECK_GT(out_w, 0) << name_;

  Tensor output(Shape({batch, channels, out_h, out_w}));
  argmax_.assign(static_cast<size_t>(output.size()), 0);

  const float* in = input.data();
  float* out = output.data();
  int64_t out_idx = 0;
  for (int64_t bc = 0; bc < batch * channels; ++bc) {
    const float* plane = in + bc * height * width;
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox, ++out_idx) {
        float best = -std::numeric_limits<float>::infinity();
        int64_t best_idx = 0;
        for (int ky = 0; ky < window_; ++ky) {
          const int iy = oy * stride_ + ky;
          if (iy >= height) break;
          for (int kx = 0; kx < window_; ++kx) {
            const int ix = ox * stride_ + kx;
            if (ix >= width) break;
            const int64_t idx = int64_t{iy} * width + ix;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = bc * height * width + idx;
            }
          }
        }
        out[out_idx] = best;
        argmax_[static_cast<size_t>(out_idx)] = best_idx;
      }
    }
  }
  return output;
}

Tensor MaxPool2dLayer::Backward(const Tensor& output_grad) {
  CHECK_EQ(static_cast<size_t>(output_grad.size()), argmax_.size()) << name_;
  Tensor input_grad(cached_input_shape_);
  float* in_grad = input_grad.data();
  const float* out_grad = output_grad.data();
  for (int64_t i = 0; i < output_grad.size(); ++i) {
    in_grad[argmax_[static_cast<size_t>(i)]] += out_grad[i];
  }
  return input_grad;
}

Shape MaxPool2dLayer::OutputShape(const Shape& input_shape) const {
  CHECK_EQ(input_shape.ndim(), 3);
  const int out_h = ConvOutputSize(static_cast<int>(input_shape.dim(1)),
                                   window_, stride_, 0);
  const int out_w = ConvOutputSize(static_cast<int>(input_shape.dim(2)),
                                   window_, stride_, 0);
  return Shape({input_shape.dim(0), out_h, out_w});
}

Tensor GlobalAvgPoolLayer::Forward(const Tensor& input, bool /*training*/) {
  CHECK_EQ(input.shape().ndim(), 4) << name_;
  cached_input_shape_ = input.shape();
  const int64_t batch = input.shape().dim(0);
  const int64_t channels = input.shape().dim(1);
  const int64_t plane = input.shape().dim(2) * input.shape().dim(3);
  Tensor output(Shape({batch, channels}));
  const float* in = input.data();
  float* out = output.data();
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t bc = 0; bc < batch * channels; ++bc) {
    float sum = 0.0f;
    for (int64_t p = 0; p < plane; ++p) sum += in[bc * plane + p];
    out[bc] = sum * inv;
  }
  return output;
}

Tensor GlobalAvgPoolLayer::Backward(const Tensor& output_grad) {
  const int64_t plane =
      cached_input_shape_.dim(2) * cached_input_shape_.dim(3);
  Tensor input_grad(cached_input_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  const float* out_grad = output_grad.data();
  float* in_grad = input_grad.data();
  for (int64_t bc = 0; bc < output_grad.size(); ++bc) {
    const float g = out_grad[bc] * inv;
    for (int64_t p = 0; p < plane; ++p) in_grad[bc * plane + p] = g;
  }
  return input_grad;
}

Shape GlobalAvgPoolLayer::OutputShape(const Shape& input_shape) const {
  CHECK_EQ(input_shape.ndim(), 3);
  return Shape({input_shape.dim(0)});
}

Tensor FlattenLayer::Forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  Tensor output = input;
  output.Reshape(Shape({input.shape().dim(0), input.size() /
                                                  input.shape().dim(0)}));
  return output;
}

Tensor FlattenLayer::Backward(const Tensor& output_grad) {
  Tensor input_grad = output_grad;
  input_grad.Reshape(cached_input_shape_);
  return input_grad;
}

Shape FlattenLayer::OutputShape(const Shape& input_shape) const {
  return Shape({input_shape.element_count()});
}

}  // namespace lpsgd
