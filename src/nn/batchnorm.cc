// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/batchnorm.h"

#include <cmath>

#include "base/logging.h"

namespace lpsgd {
namespace {

// Iterates a {batch, C} or {batch, C, H, W} tensor channel-wise: calls
// fn(channel, flat_index) for every element.
template <typename Fn>
void ForEachChannelElement(const Shape& shape, Fn&& fn) {
  const int64_t batch = shape.dim(0);
  const int64_t channels = shape.dim(1);
  const int64_t plane =
      shape.ndim() == 4 ? shape.dim(2) * shape.dim(3) : 1;
  int64_t idx = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t p = 0; p < plane; ++p, ++idx) {
        fn(c, idx);
      }
    }
  }
}

}  // namespace

BatchNormLayer::BatchNormLayer(std::string name, int channels, float momentum,
                               float epsilon)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape({channels}), 1.0f),
      gamma_grad_(Shape({channels})),
      beta_(Shape({channels})),
      beta_grad_(Shape({channels})),
      running_mean_(Shape({channels})),
      running_var_(Shape({channels}), 1.0f) {
  CHECK_GT(channels, 0);
}

Tensor BatchNormLayer::Forward(const Tensor& input, bool training) {
  CHECK(input.shape().ndim() == 2 || input.shape().ndim() == 4) << name_;
  CHECK_EQ(input.shape().dim(1), channels_) << name_;
  const Shape& shape = input.shape();
  const int64_t per_channel = input.size() / channels_;

  std::vector<double> mean(static_cast<size_t>(channels_), 0.0);
  std::vector<double> var(static_cast<size_t>(channels_), 0.0);

  if (training) {
    const float* in = input.data();
    ForEachChannelElement(shape, [&](int64_t c, int64_t idx) {
      mean[static_cast<size_t>(c)] += in[idx];
    });
    for (auto& m : mean) m /= static_cast<double>(per_channel);
    ForEachChannelElement(shape, [&](int64_t c, int64_t idx) {
      const double d = in[idx] - mean[static_cast<size_t>(c)];
      var[static_cast<size_t>(c)] += d * d;
    });
    for (auto& v : var) v /= static_cast<double>(per_channel);
    for (int c = 0; c < channels_; ++c) {
      running_mean_.at(c) = momentum_ * running_mean_.at(c) +
                            (1.0f - momentum_) *
                                static_cast<float>(mean[static_cast<size_t>(c)]);
      running_var_.at(c) = momentum_ * running_var_.at(c) +
                           (1.0f - momentum_) *
                               static_cast<float>(var[static_cast<size_t>(c)]);
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      mean[static_cast<size_t>(c)] = running_mean_.at(c);
      var[static_cast<size_t>(c)] = running_var_.at(c);
    }
  }

  cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0f);
  for (int c = 0; c < channels_; ++c) {
    cached_inv_std_[static_cast<size_t>(c)] = static_cast<float>(
        1.0 / std::sqrt(var[static_cast<size_t>(c)] + epsilon_));
  }

  Tensor output(shape);
  Tensor normalized(shape);
  const float* in = input.data();
  float* out = output.data();
  float* norm = normalized.data();
  ForEachChannelElement(shape, [&](int64_t c, int64_t idx) {
    const size_t ci = static_cast<size_t>(c);
    const float n = (in[idx] - static_cast<float>(mean[ci])) *
                    cached_inv_std_[ci];
    norm[idx] = n;
    out[idx] = gamma_.at(c) * n + beta_.at(c);
  });

  if (training) {
    cached_normalized_ = std::move(normalized);
    cached_input_shape_ = shape;
  }
  return output;
}

Tensor BatchNormLayer::Backward(const Tensor& output_grad) {
  CHECK(output_grad.shape() == cached_input_shape_) << name_;
  const Shape& shape = cached_input_shape_;
  const int64_t per_channel = output_grad.size() / channels_;

  // Standard batch-norm backward:
  //   dx = gamma * inv_std / m * (m * dy - sum(dy) - x_hat * sum(dy * x_hat))
  std::vector<double> sum_dy(static_cast<size_t>(channels_), 0.0);
  std::vector<double> sum_dy_xhat(static_cast<size_t>(channels_), 0.0);
  const float* dy = output_grad.data();
  const float* xhat = cached_normalized_.data();
  ForEachChannelElement(shape, [&](int64_t c, int64_t idx) {
    const size_t ci = static_cast<size_t>(c);
    sum_dy[ci] += dy[idx];
    sum_dy_xhat[ci] += static_cast<double>(dy[idx]) * xhat[idx];
  });

  for (int c = 0; c < channels_; ++c) {
    const size_t ci = static_cast<size_t>(c);
    beta_grad_.at(c) += static_cast<float>(sum_dy[ci]);
    gamma_grad_.at(c) += static_cast<float>(sum_dy_xhat[ci]);
  }

  Tensor input_grad(shape);
  float* dx = input_grad.data();
  const double inv_m = 1.0 / static_cast<double>(per_channel);
  ForEachChannelElement(shape, [&](int64_t c, int64_t idx) {
    const size_t ci = static_cast<size_t>(c);
    const double term = static_cast<double>(dy[idx]) -
                        sum_dy[ci] * inv_m -
                        static_cast<double>(xhat[idx]) * sum_dy_xhat[ci] *
                            inv_m;
    dx[idx] = static_cast<float>(gamma_.at(c) * cached_inv_std_[ci] * term);
  });
  return input_grad;
}

void BatchNormLayer::CollectParams(std::vector<ParamRef>* params) {
  params->push_back(ParamRef{name_ + "/gamma", &gamma_, &gamma_grad_,
                             Shape({channels_}), ParamKind::kOther});
  params->push_back(ParamRef{name_ + "/beta", &beta_, &beta_grad_,
                             Shape({channels_}), ParamKind::kOther});
}

}  // namespace lpsgd
