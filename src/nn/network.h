// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_NETWORK_H_
#define LPSGD_NN_NETWORK_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "nn/layer.h"

namespace lpsgd {

// A sequential stack of layers ending in classification logits. Owns its
// layers. One Network instance is one model replica (e.g. one simulated
// GPU's copy).
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // Appends a layer; returns *this for chaining.
  Network& Add(std::unique_ptr<Layer> layer);

  // Runs all layers; input leading dimension is the batch.
  Tensor Forward(const Tensor& input, bool training);

  // Runs all layers backward from the loss gradient w.r.t. the logits,
  // accumulating parameter gradients.
  void Backward(const Tensor& logits_grad);

  // References to every trainable parameter, in layer order. The pointers
  // stay valid for the lifetime of the network (layers are never removed).
  std::vector<ParamRef> Params();

  // Zeroes all parameter gradients.
  void ZeroGrads();

  // Total number of trainable scalars.
  int64_t ParameterCount();

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }

  // Copies all parameter values from `other` (architectures must match;
  // used to give every data-parallel replica identical initial weights).
  void CopyParamsFrom(Network& other);

  // Checkpointing: writes all parameter values (names, shapes, data) in a
  // self-describing binary format, and reads them back into a network of
  // the same architecture. LoadParams verifies names and shapes and fails
  // without modifying any parameter on mismatch.
  Status SaveParams(std::ostream& os);
  Status LoadParams(std::istream& is);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// A residual block: output = inner(x) + shortcut(x), where shortcut is
// identity when shapes match or an optional projection sub-network.
// Usable as a single Layer inside a Network (this is how the scaled-down
// ResNet models are assembled).
class ResidualBlock : public Layer {
 public:
  // `inner` must preserve the batch dimension. `projection` may be null
  // (identity shortcut); when given, it must map the input shape to the
  // inner output shape.
  ResidualBlock(std::string name, std::vector<std::unique_ptr<Layer>> inner,
                std::vector<std::unique_ptr<Layer>> projection = {});

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  void CollectParams(std::vector<ParamRef>* params) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> inner_;
  std::vector<std::unique_ptr<Layer>> projection_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_NETWORK_H_
