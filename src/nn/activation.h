// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_ACTIVATION_H_
#define LPSGD_NN_ACTIVATION_H_

#include <string>

#include "nn/layer.h"

namespace lpsgd {

enum class ActivationKind { kRelu, kTanh, kSigmoid };

// Elementwise activation layer (shape-preserving, no parameters).
class ActivationLayer : public Layer {
 public:
  ActivationLayer(std::string name, ActivationKind kind);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

 private:
  std::string name_;
  ActivationKind kind_;
  Tensor cached_output_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_ACTIVATION_H_
