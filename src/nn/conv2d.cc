// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/conv2d.h"

#include <cmath>

#include "base/logging.h"
#include "tensor/ops.h"

namespace lpsgd {

Conv2dLayer::Conv2dLayer(std::string name, int in_channels, int out_channels,
                         int kernel_size, int stride, int padding, Rng* rng)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(Shape({out_channels,
                     int64_t{in_channels} * kernel_size * kernel_size})),
      weight_grad_(weight_.shape()),
      bias_(Shape({out_channels})),
      bias_grad_(bias_.shape()) {
  CHECK_GT(kernel_size, 0);
  CHECK_GT(stride, 0);
  const float fan_in =
      static_cast<float>(in_channels) * kernel_size * kernel_size;
  weight_.FillGaussian(rng, std::sqrt(2.0f / fan_in));
}

Tensor Conv2dLayer::Forward(const Tensor& input, bool /*training*/) {
  CHECK_EQ(input.shape().ndim(), 4) << name_;
  const int64_t batch = input.shape().dim(0);
  CHECK_EQ(input.shape().dim(1), in_channels_) << name_;
  const int height = static_cast<int>(input.shape().dim(2));
  const int width = static_cast<int>(input.shape().dim(3));
  const int out_h = ConvOutputSize(height, kernel_size_, stride_, padding_);
  const int out_w = ConvOutputSize(width, kernel_size_, stride_, padding_);
  CHECK_GT(out_h, 0) << name_;
  CHECK_GT(out_w, 0) << name_;

  cached_input_ = input;
  cached_patches_.assign(static_cast<size_t>(batch), Tensor());

  Tensor output(Shape({batch, out_channels_, out_h, out_w}));
  const int64_t sample_in = input.size() / batch;
  const int64_t sample_out = output.size() / batch;
  const int64_t plane = int64_t{out_h} * out_w;

  Tensor image(Shape({in_channels_, height, width}));
  for (int64_t s = 0; s < batch; ++s) {
    std::copy(input.data() + s * sample_in,
              input.data() + (s + 1) * sample_in, image.data());
    Tensor patches(
        Shape({plane, int64_t{in_channels_} * kernel_size_ * kernel_size_}));
    Im2Col(image, kernel_size_, kernel_size_, stride_, padding_, &patches);

    // out[oc, pos] = sum_k W[oc, k] * patches[pos, k]  (oc x plane matrix).
    Tensor out_mat(Shape({out_channels_, plane}));
    Gemm(/*transpose_a=*/false, /*transpose_b=*/true, 1.0f, weight_, patches,
         0.0f, &out_mat);
    float* out_sample = output.data() + s * sample_out;
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.at(oc);
      const float* src = out_mat.data() + int64_t{oc} * plane;
      float* dst = out_sample + int64_t{oc} * plane;
      for (int64_t p = 0; p < plane; ++p) dst[p] = src[p] + b;
    }
    cached_patches_[static_cast<size_t>(s)] = std::move(patches);
  }
  return output;
}

Tensor Conv2dLayer::Backward(const Tensor& output_grad) {
  const Shape& in_shape = cached_input_.shape();
  const int64_t batch = in_shape.dim(0);
  const int height = static_cast<int>(in_shape.dim(2));
  const int width = static_cast<int>(in_shape.dim(3));
  const int out_h = ConvOutputSize(height, kernel_size_, stride_, padding_);
  const int out_w = ConvOutputSize(width, kernel_size_, stride_, padding_);
  const int64_t plane = int64_t{out_h} * out_w;
  CHECK_EQ(output_grad.shape().dim(0), batch);
  CHECK_EQ(output_grad.shape().dim(1), out_channels_);

  Tensor input_grad(in_shape);
  const int64_t sample_in = cached_input_.size() / batch;
  const int64_t sample_out = output_grad.size() / batch;

  Tensor grad_mat(Shape({out_channels_, plane}));
  Tensor image_grad(Shape({in_channels_, height, width}));
  for (int64_t s = 0; s < batch; ++s) {
    std::copy(output_grad.data() + s * sample_out,
              output_grad.data() + (s + 1) * sample_out, grad_mat.data());
    const Tensor& patches = cached_patches_[static_cast<size_t>(s)];

    // dW += grad_mat * patches ; dPatches = grad_mat^T * W.
    Gemm(/*transpose_a=*/false, /*transpose_b=*/false, 1.0f, grad_mat,
         patches, 1.0f, &weight_grad_);
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* src = grad_mat.data() + int64_t{oc} * plane;
      float sum = 0.0f;
      for (int64_t p = 0; p < plane; ++p) sum += src[p];
      bias_grad_.at(oc) += sum;
    }

    Tensor patch_grad(patches.shape());
    Gemm(/*transpose_a=*/true, /*transpose_b=*/false, 1.0f, grad_mat,
         weight_, 0.0f, &patch_grad);
    image_grad.SetZero();
    Col2Im(patch_grad, kernel_size_, kernel_size_, stride_, padding_,
           &image_grad);
    std::copy(image_grad.data(), image_grad.data() + sample_in,
              input_grad.data() + s * sample_in);
  }
  return input_grad;
}

void Conv2dLayer::CollectParams(std::vector<ParamRef>* params) {
  // CNTK convolution kernels expose the (small) kernel width as the first
  // tensor dimension, so per-column 1bitSGD sees columns of 1-3 elements;
  // this is the performance artefact analyzed in Section 3.2.
  params->push_back(
      ParamRef{name_ + "/K", &weight_, &weight_grad_,
               Shape({kernel_size_, kernel_size_, in_channels_,
                      out_channels_}),
               ParamKind::kConvolutional});
  params->push_back(ParamRef{name_ + "/b", &bias_, &bias_grad_,
                             Shape({out_channels_}), ParamKind::kBias});
}

Shape Conv2dLayer::OutputShape(const Shape& input_shape) const {
  CHECK_EQ(input_shape.ndim(), 3);
  CHECK_EQ(input_shape.dim(0), in_channels_);
  const int out_h = ConvOutputSize(static_cast<int>(input_shape.dim(1)),
                                   kernel_size_, stride_, padding_);
  const int out_w = ConvOutputSize(static_cast<int>(input_shape.dim(2)),
                                   kernel_size_, stride_, padding_);
  return Shape({out_channels_, out_h, out_w});
}

}  // namespace lpsgd
