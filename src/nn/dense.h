// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_DENSE_H_
#define LPSGD_NN_DENSE_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/layer.h"

namespace lpsgd {

// Fully-connected layer: y = x W^T + b, with x of shape {batch, in} and
// W of shape {out, in}. Weights use scaled Gaussian (He) initialization.
class DenseLayer : public Layer {
 public:
  DenseLayer(std::string name, int64_t in_features, int64_t out_features,
             Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  void CollectParams(std::vector<ParamRef>* params) override;
  Shape OutputShape(const Shape& input_shape) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  std::string name_;
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;       // {out, in}
  Tensor weight_grad_;  // {out, in}
  Tensor bias_;         // {out}
  Tensor bias_grad_;    // {out}
  Tensor cached_input_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_DENSE_H_
