// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/dropout.h"

#include "base/logging.h"
#include "base/rng.h"

namespace lpsgd {

DropoutLayer::DropoutLayer(std::string name, float rate, uint64_t seed)
    : name_(std::move(name)), rate_(rate), seed_(seed) {
  CHECK_GE(rate, 0.0f);
  CHECK_LT(rate, 1.0f);
}

Tensor DropoutLayer::Forward(const Tensor& input, bool training) {
  last_was_training_ = training;
  if (!training || rate_ == 0.0f) {
    return input;
  }
  const CounterRng stream(seed_, forward_calls_++);
  const float keep_scale = 1.0f / (1.0f - rate_);
  Tensor output = input;
  mask_.assign(static_cast<size_t>(input.size()), true);
  float* data = output.data();
  for (int64_t i = 0; i < output.size(); ++i) {
    if (stream.UniformAt(static_cast<uint64_t>(i)) < rate_) {
      data[i] = 0.0f;
      mask_[static_cast<size_t>(i)] = false;
    } else {
      data[i] *= keep_scale;
    }
  }
  return output;
}

Tensor DropoutLayer::Backward(const Tensor& output_grad) {
  if (!last_was_training_ || rate_ == 0.0f) {
    return output_grad;
  }
  CHECK_EQ(static_cast<size_t>(output_grad.size()), mask_.size()) << name_;
  Tensor input_grad = output_grad;
  const float keep_scale = 1.0f / (1.0f - rate_);
  float* grad = input_grad.data();
  for (int64_t i = 0; i < input_grad.size(); ++i) {
    grad[i] = mask_[static_cast<size_t>(i)] ? grad[i] * keep_scale : 0.0f;
  }
  return input_grad;
}

}  // namespace lpsgd
