// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_LOSS_H_
#define LPSGD_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace lpsgd {

// Result of evaluating softmax cross-entropy over a batch.
struct LossResult {
  double loss_sum = 0.0;   // summed (not averaged) over the batch
  int64_t correct = 0;     // top-1 correct predictions
  Tensor logits_grad;      // d(mean loss)/d(logits), shape of logits
};

// Computes softmax cross-entropy loss, top-1 accuracy counts, and the
// gradient of the *mean* loss w.r.t. the logits ({batch, classes}).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

// Evaluation-only variant (no gradient allocation). Tracks both top-1 and
// top-5 correctness (the paper reports top-5 for ImageNet-scale tasks).
struct EvalResult {
  double loss_sum = 0.0;
  int64_t correct = 0;
  int64_t correct_top5 = 0;
};
EvalResult EvaluateSoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int>& labels);

// True when `label` is among the `k` largest logits of row `r`.
bool LabelInTopK(const Tensor& logits, int64_t r, int label, int k);

}  // namespace lpsgd

#endif  // LPSGD_NN_LOSS_H_
