// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_OPTIMIZER_H_
#define LPSGD_NN_OPTIMIZER_H_

#include <utility>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace lpsgd {

// SGD with classical momentum, the optimizer used throughout the paper
// (Section 4.4: default momentum 0.9). Velocity state is keyed by parameter
// position, so the same optimizer instance must always be stepped with the
// same parameter list.
class SgdMomentumOptimizer {
 public:
  SgdMomentumOptimizer(float learning_rate, float momentum);

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

  // Applies one update x -= lr * v, with v = momentum * v + grad. `grads[i]`
  // must already hold the (globally averaged) gradient for `params[i]`.
  void Step(const std::vector<ParamRef>& params);

  // Momentum-state access for in-memory recovery snapshots (SyncTrainer's
  // rollback-and-retry): velocity() copies out the per-parameter buffers,
  // set_velocity restores them. An empty vector resets to the lazily-sized
  // initial state.
  const std::vector<Tensor>& velocity() const { return velocity_; }
  void set_velocity(std::vector<Tensor> velocity) {
    velocity_ = std::move(velocity);
  }

 private:
  float learning_rate_;
  float momentum_;
  std::vector<Tensor> velocity_;  // lazily sized on first Step
};

}  // namespace lpsgd

#endif  // LPSGD_NN_OPTIMIZER_H_
