// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_CONV2D_H_
#define LPSGD_NN_CONV2D_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/layer.h"

namespace lpsgd {

// 2-D convolution over {batch, channels, height, width} inputs, implemented
// as im2col + GEMM per sample. Square kernels, uniform stride/padding.
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(std::string name, int in_channels, int out_channels,
              int kernel_size, int stride, int padding, Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  void CollectParams(std::vector<ParamRef>* params) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  int in_channels_;
  int out_channels_;
  int kernel_size_;
  int stride_;
  int padding_;
  Tensor weight_;       // {out_c, in_c * k * k}
  Tensor weight_grad_;  // same shape
  Tensor bias_;         // {out_c}
  Tensor bias_grad_;    // {out_c}
  Tensor cached_input_;
  // im2col patches per sample from the last Forward, reused in Backward.
  std::vector<Tensor> cached_patches_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_CONV2D_H_
