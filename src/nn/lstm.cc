// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/lstm.h"

#include <cmath>

#include "base/logging.h"
#include "tensor/ops.h"

namespace lpsgd {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LstmLayer::LstmLayer(std::string name, int input_dim, int hidden_dim,
                     Rng* rng, bool return_sequences)
    : name_(std::move(name)),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      return_sequences_(return_sequences),
      wx_(Shape({4 * hidden_dim, input_dim})),
      wx_grad_(wx_.shape()),
      wh_(Shape({4 * hidden_dim, hidden_dim})),
      wh_grad_(wh_.shape()),
      bias_(Shape({4 * hidden_dim})),
      bias_grad_(bias_.shape()) {
  CHECK_GT(input_dim, 0);
  CHECK_GT(hidden_dim, 0);
  wx_.FillGaussian(rng, std::sqrt(1.0f / static_cast<float>(input_dim)));
  wh_.FillGaussian(rng, std::sqrt(1.0f / static_cast<float>(hidden_dim)));
  // Forget-gate bias starts at 1 (standard practice: remember by default).
  for (int j = 0; j < hidden_dim; ++j) bias_.at(hidden_dim + j) = 1.0f;
}

Tensor LstmLayer::Forward(const Tensor& input, bool /*training*/) {
  CHECK_EQ(input.shape().ndim(), 3) << name_;
  const int64_t batch = input.shape().dim(0);
  const int64_t time = input.shape().dim(1);
  CHECK_EQ(input.shape().dim(2), input_dim_) << name_;

  steps_.clear();
  steps_.reserve(static_cast<size_t>(time));

  Tensor h(Shape({batch, hidden_dim_}));
  Tensor c(Shape({batch, hidden_dim_}));
  const int64_t h4 = 4 * int64_t{hidden_dim_};

  for (int64_t t = 0; t < time; ++t) {
    StepCache step;
    step.x = Tensor(Shape({batch, input_dim_}));
    for (int64_t b = 0; b < batch; ++b) {
      const float* src =
          input.data() + (b * time + t) * input_dim_;
      std::copy(src, src + input_dim_, step.x.data() + b * input_dim_);
    }
    step.h_prev = h;
    step.c_prev = c;

    Tensor gates(Shape({batch, h4}));
    Gemm(false, true, 1.0f, step.x, wx_, 0.0f, &gates);
    Gemm(false, true, 1.0f, step.h_prev, wh_, 1.0f, &gates);
    AddRowBroadcast(bias_, &gates);

    step.c = Tensor(Shape({batch, hidden_dim_}));
    step.tanh_c = Tensor(Shape({batch, hidden_dim_}));
    for (int64_t b = 0; b < batch; ++b) {
      float* g = gates.data() + b * h4;
      const float* cp = step.c_prev.data() + b * hidden_dim_;
      float* cn = step.c.data() + b * hidden_dim_;
      float* tc = step.tanh_c.data() + b * hidden_dim_;
      float* hn = h.data() + b * hidden_dim_;
      for (int j = 0; j < hidden_dim_; ++j) {
        const float i_gate = SigmoidF(g[j]);
        const float f_gate = SigmoidF(g[hidden_dim_ + j]);
        const float g_gate = std::tanh(g[2 * hidden_dim_ + j]);
        const float o_gate = SigmoidF(g[3 * hidden_dim_ + j]);
        g[j] = i_gate;
        g[hidden_dim_ + j] = f_gate;
        g[2 * hidden_dim_ + j] = g_gate;
        g[3 * hidden_dim_ + j] = o_gate;
        cn[j] = f_gate * cp[j] + i_gate * g_gate;
        tc[j] = std::tanh(cn[j]);
        hn[j] = o_gate * tc[j];
      }
    }
    step.gates = std::move(gates);
    c = step.c;
    steps_.push_back(std::move(step));
  }

  if (!return_sequences_) return h;

  // Assemble the full hidden-state sequence {batch, time, hidden}.
  // h_t for step t is o_t * tanh(c_t), both cached per step.
  Tensor sequence(Shape({batch, time, hidden_dim_}));
  for (int64_t t = 0; t < time; ++t) {
    const StepCache& step = steps_[static_cast<size_t>(t)];
    for (int64_t b = 0; b < batch; ++b) {
      const float* gates = step.gates.data() + b * h4;
      const float* tc = step.tanh_c.data() + b * hidden_dim_;
      float* dst = sequence.data() + (b * time + t) * hidden_dim_;
      for (int j = 0; j < hidden_dim_; ++j) {
        dst[j] = gates[3 * hidden_dim_ + j] * tc[j];
      }
    }
  }
  return sequence;
}

Tensor LstmLayer::Backward(const Tensor& output_grad) {
  CHECK(!steps_.empty()) << name_;
  const int64_t time = static_cast<int64_t>(steps_.size());
  const int64_t batch = output_grad.shape().dim(0);
  if (return_sequences_) {
    CHECK(output_grad.shape() == Shape({batch, time, hidden_dim_})) << name_;
  } else {
    CHECK_EQ(output_grad.cols(), hidden_dim_) << name_;
  }
  const int64_t h4 = 4 * int64_t{hidden_dim_};

  Tensor input_grad(Shape({batch, time, input_dim_}));
  Tensor dh(Shape({batch, hidden_dim_}));
  if (!return_sequences_) {
    std::copy(output_grad.data(), output_grad.data() + dh.size(),
              dh.data());
  }
  Tensor dc(Shape({batch, hidden_dim_}));

  for (int64_t t = time - 1; t >= 0; --t) {
    if (return_sequences_) {
      // Inject this step's own output gradient on top of the carried
      // recurrent gradient.
      for (int64_t b = 0; b < batch; ++b) {
        const float* src =
            output_grad.data() + (b * time + t) * hidden_dim_;
        float* dst = dh.data() + b * hidden_dim_;
        for (int j = 0; j < hidden_dim_; ++j) dst[j] += src[j];
      }
    }
    const StepCache& step = steps_[static_cast<size_t>(t)];
    Tensor dgates(Shape({batch, h4}));
    Tensor dh_next(Shape({batch, hidden_dim_}));
    Tensor dc_next(Shape({batch, hidden_dim_}));

    for (int64_t b = 0; b < batch; ++b) {
      const float* g = step.gates.data() + b * h4;
      const float* cp = step.c_prev.data() + b * hidden_dim_;
      const float* tc = step.tanh_c.data() + b * hidden_dim_;
      const float* dhb = dh.data() + b * hidden_dim_;
      const float* dcb = dc.data() + b * hidden_dim_;
      float* dg = dgates.data() + b * h4;
      float* dcn = dc_next.data() + b * hidden_dim_;
      for (int j = 0; j < hidden_dim_; ++j) {
        const float i_gate = g[j];
        const float f_gate = g[hidden_dim_ + j];
        const float g_gate = g[2 * hidden_dim_ + j];
        const float o_gate = g[3 * hidden_dim_ + j];
        // dL/dc_t: through h_t = o * tanh(c_t) plus carried dc.
        const float dct =
            dcb[j] + dhb[j] * o_gate * (1.0f - tc[j] * tc[j]);
        dg[j] = dct * g_gate * i_gate * (1.0f - i_gate);            // di
        dg[hidden_dim_ + j] =
            dct * cp[j] * f_gate * (1.0f - f_gate);                 // df
        dg[2 * hidden_dim_ + j] =
            dct * i_gate * (1.0f - g_gate * g_gate);                // dg
        dg[3 * hidden_dim_ + j] =
            dhb[j] * tc[j] * o_gate * (1.0f - o_gate);              // do
        dcn[j] = dct * f_gate;  // toward c_{t-1}
      }
    }

    // Parameter gradients.
    Gemm(true, false, 1.0f, dgates, step.x, 1.0f, &wx_grad_);
    Gemm(true, false, 1.0f, dgates, step.h_prev, 1.0f, &wh_grad_);
    Tensor db(bias_grad_.shape());
    SumRowsTo(dgates, &db);
    Axpy(1.0f, db, &bias_grad_);

    // Input and recurrent gradients.
    Tensor dx(Shape({batch, input_dim_}));
    Gemm(false, false, 1.0f, dgates, wx_, 0.0f, &dx);
    for (int64_t b = 0; b < batch; ++b) {
      float* dst = input_grad.data() + (b * time + t) * input_dim_;
      std::copy(dx.data() + b * input_dim_, dx.data() + (b + 1) * input_dim_,
                dst);
    }
    Gemm(false, false, 1.0f, dgates, wh_, 0.0f, &dh_next);

    dh = std::move(dh_next);
    dc = std::move(dc_next);
  }
  return input_grad;
}

void LstmLayer::CollectParams(std::vector<ParamRef>* params) {
  params->push_back(ParamRef{name_ + "/Wx", &wx_, &wx_grad_,
                             Shape({4 * hidden_dim_, input_dim_}),
                             ParamKind::kFullyConnected});
  params->push_back(ParamRef{name_ + "/Wh", &wh_, &wh_grad_,
                             Shape({4 * hidden_dim_, hidden_dim_}),
                             ParamKind::kFullyConnected});
  params->push_back(ParamRef{name_ + "/b", &bias_, &bias_grad_,
                             Shape({4 * hidden_dim_}), ParamKind::kBias});
}

Shape LstmLayer::OutputShape(const Shape& input_shape) const {
  CHECK_EQ(input_shape.ndim(), 2);  // {time, input_dim}
  CHECK_EQ(input_shape.dim(1), input_dim_);
  if (return_sequences_) return Shape({input_shape.dim(0), hidden_dim_});
  return Shape({hidden_dim_});
}

}  // namespace lpsgd
