// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/network.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {

Network& Network::Add(std::unique_ptr<Layer> layer) {
  CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Network::Forward(const Tensor& input, bool training) {
  Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->Forward(activation, training);
  }
  return activation;
}

void Network::Backward(const Tensor& logits_grad) {
  Tensor grad = logits_grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
}

std::vector<ParamRef> Network::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    layer->CollectParams(&params);
  }
  return params;
}

void Network::ZeroGrads() {
  for (ParamRef& param : Params()) {
    param.grad->SetZero();
  }
}

int64_t Network::ParameterCount() {
  int64_t count = 0;
  for (const ParamRef& param : Params()) {
    count += param.value->size();
  }
  return count;
}

void Network::CopyParamsFrom(Network& other) {
  std::vector<ParamRef> mine = Params();
  std::vector<ParamRef> theirs = other.Params();
  CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    CHECK(mine[i].value->shape() == theirs[i].value->shape())
        << mine[i].name;
    *mine[i].value = *theirs[i].value;
  }
}

namespace {

// Checkpoint format: magic, version, parameter count, then per parameter:
// name (u32 length + bytes), rank (u32) + dims (i64 each), fp32 data.
constexpr uint32_t kCheckpointMagic = 0x4c505347;  // "LPSG"
constexpr uint32_t kCheckpointVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

Status Network::SaveParams(std::ostream& os) {
  const std::vector<ParamRef> params = Params();
  WritePod(os, kCheckpointMagic);
  WritePod(os, kCheckpointVersion);
  WritePod(os, static_cast<uint32_t>(params.size()));
  for (const ParamRef& param : params) {
    WritePod(os, static_cast<uint32_t>(param.name.size()));
    os.write(param.name.data(),
             static_cast<std::streamsize>(param.name.size()));
    const Shape& shape = param.value->shape();
    WritePod(os, static_cast<uint32_t>(shape.ndim()));
    for (int64_t d : shape.dims()) WritePod(os, d);
    os.write(reinterpret_cast<const char*>(param.value->data()),
             static_cast<std::streamsize>(param.value->size() *
                                          sizeof(float)));
  }
  if (!os) return InternalError("checkpoint write failed");
  return OkStatus();
}

Status Network::LoadParams(std::istream& is) {
  uint32_t magic = 0, version = 0, count = 0;
  if (!ReadPod(is, &magic) || magic != kCheckpointMagic) {
    return InvalidArgumentError("not an LPSGD checkpoint");
  }
  if (!ReadPod(is, &version) || version != kCheckpointVersion) {
    return InvalidArgumentError(StrCat("unsupported checkpoint version"));
  }
  const std::vector<ParamRef> params = Params();
  if (!ReadPod(is, &count) || count != params.size()) {
    return InvalidArgumentError(
        StrCat("checkpoint has ", count, " parameters, network has ",
               params.size()));
  }

  // Parse everything into staging buffers first so a mismatch midway
  // leaves the network untouched.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(is, &name_len) || name_len > 4096) {
      return InvalidArgumentError("corrupt checkpoint (name length)");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is || name != params[i].name) {
      return InvalidArgumentError(
          StrCat("checkpoint parameter '", name, "' does not match '",
                 params[i].name, "'"));
    }
    uint32_t rank = 0;
    if (!ReadPod(is, &rank) || rank > 16) {
      return InvalidArgumentError("corrupt checkpoint (rank)");
    }
    std::vector<int64_t> dims(rank);
    for (auto& d : dims) {
      if (!ReadPod(is, &d)) {
        return InvalidArgumentError("corrupt checkpoint (dims)");
      }
    }
    if (Shape(dims) != params[i].value->shape()) {
      return InvalidArgumentError(
          StrCat("shape mismatch for '", name, "'"));
    }
    staged[i].resize(static_cast<size_t>(params[i].value->size()));
    is.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(staged[i].size() * sizeof(float)));
    if (!is) return InvalidArgumentError("corrupt checkpoint (data)");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), params[i].value->data());
  }
  return OkStatus();
}

ResidualBlock::ResidualBlock(std::string name,
                             std::vector<std::unique_ptr<Layer>> inner,
                             std::vector<std::unique_ptr<Layer>> projection)
    : name_(std::move(name)),
      inner_(std::move(inner)),
      projection_(std::move(projection)) {
  CHECK(!inner_.empty()) << name_;
}

Tensor ResidualBlock::Forward(const Tensor& input, bool training) {
  Tensor main_path = input;
  for (auto& layer : inner_) {
    main_path = layer->Forward(main_path, training);
  }
  Tensor shortcut = input;
  for (auto& layer : projection_) {
    shortcut = layer->Forward(shortcut, training);
  }
  CHECK(main_path.shape() == shortcut.shape())
      << name_ << ": inner " << main_path.shape().ToString()
      << " vs shortcut " << shortcut.shape().ToString();
  float* out = main_path.data();
  const float* sc = shortcut.data();
  for (int64_t i = 0; i < main_path.size(); ++i) out[i] += sc[i];
  return main_path;
}

Tensor ResidualBlock::Backward(const Tensor& output_grad) {
  Tensor main_grad = output_grad;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    main_grad = (*it)->Backward(main_grad);
  }
  Tensor shortcut_grad = output_grad;
  for (auto it = projection_.rbegin(); it != projection_.rend(); ++it) {
    shortcut_grad = (*it)->Backward(shortcut_grad);
  }
  CHECK(main_grad.shape() == shortcut_grad.shape()) << name_;
  float* out = main_grad.data();
  const float* sc = shortcut_grad.data();
  for (int64_t i = 0; i < main_grad.size(); ++i) out[i] += sc[i];
  return main_grad;
}

void ResidualBlock::CollectParams(std::vector<ParamRef>* params) {
  for (auto& layer : inner_) layer->CollectParams(params);
  for (auto& layer : projection_) layer->CollectParams(params);
}

Shape ResidualBlock::OutputShape(const Shape& input_shape) const {
  Shape shape = input_shape;
  for (const auto& layer : inner_) shape = layer->OutputShape(shape);
  return shape;
}

}  // namespace lpsgd
