// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/activation.h"

#include <cmath>

#include "base/logging.h"

namespace lpsgd {

ActivationLayer::ActivationLayer(std::string name, ActivationKind kind)
    : name_(std::move(name)), kind_(kind) {}

Tensor ActivationLayer::Forward(const Tensor& input, bool /*training*/) {
  Tensor output = input;
  float* data = output.data();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (int64_t i = 0; i < output.size(); ++i) {
        if (data[i] < 0.0f) data[i] = 0.0f;
      }
      break;
    case ActivationKind::kTanh:
      for (int64_t i = 0; i < output.size(); ++i) data[i] = std::tanh(data[i]);
      break;
    case ActivationKind::kSigmoid:
      for (int64_t i = 0; i < output.size(); ++i) {
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      }
      break;
  }
  cached_output_ = output;
  return output;
}

Tensor ActivationLayer::Backward(const Tensor& output_grad) {
  CHECK_EQ(output_grad.size(), cached_output_.size());
  Tensor input_grad = output_grad;
  float* grad = input_grad.data();
  const float* out = cached_output_.data();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (int64_t i = 0; i < input_grad.size(); ++i) {
        if (out[i] <= 0.0f) grad[i] = 0.0f;
      }
      break;
    case ActivationKind::kTanh:
      for (int64_t i = 0; i < input_grad.size(); ++i) {
        grad[i] *= 1.0f - out[i] * out[i];
      }
      break;
    case ActivationKind::kSigmoid:
      for (int64_t i = 0; i < input_grad.size(); ++i) {
        grad[i] *= out[i] * (1.0f - out[i]);
      }
      break;
  }
  return input_grad;
}

}  // namespace lpsgd
