// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_LAYER_H_
#define LPSGD_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace lpsgd {

// Role of a parameter tensor; the quantization policy treats convolutional
// and fully-connected matrices differently (Section 5.1, "Impact of Layer
// Types") and may bypass small tensors such as biases.
enum class ParamKind {
  kFullyConnected,
  kConvolutional,
  kBias,
  kOther,
};

// A view into one trainable parameter matrix of a network.
//
// `quant_shape` is the CNTK tensor shape of the parameter as seen by the
// quantizer: its first dimension is the "row" count and the remaining
// dimensions flatten onto columns (Section 3.2.1). For convolution kernels
// CNTK's first dimension is the (tiny) kernel width, which is what makes
// the stock per-column 1bitSGD pathological on convolutional networks; we
// reproduce that layout faithfully.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  Shape quant_shape;
  ParamKind kind = ParamKind::kOther;
};

// One differentiable network module. Layers cache whatever they need from
// Forward to run Backward; a layer instance therefore belongs to exactly
// one replica and one in-flight batch at a time.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  // Computes the layer output for `input` (leading dimension = batch).
  // `training` toggles train-time behaviour (e.g. batch-norm statistics).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  // Given the loss gradient w.r.t. the layer output, accumulates parameter
  // gradients (+=) and returns the loss gradient w.r.t. the layer input.
  // Must be called exactly once per Forward.
  virtual Tensor Backward(const Tensor& output_grad) = 0;

  // Appends references to this layer's parameters. Default: none.
  virtual void CollectParams(std::vector<ParamRef>* params) {
    (void)params;
  }

  // Output shape for a given input shape (both without batch dimension).
  virtual Shape OutputShape(const Shape& input_shape) const = 0;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_LAYER_H_
