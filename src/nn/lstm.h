// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_LSTM_H_
#define LPSGD_NN_LSTM_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/layer.h"

namespace lpsgd {

// Single-layer LSTM over {batch, time, input_dim} sequences. With
// `return_sequences` false (default) it emits the final hidden state
// {batch, hidden_dim}; with true it emits every step's hidden state
// {batch, time, hidden_dim}, which is what stacked LSTMs consume (the
// paper's AN4 network has three LSTM components). Gate layout in the
// packed weight matrices is [input, forget, cell, output].
class LstmLayer : public Layer {
 public:
  LstmLayer(std::string name, int input_dim, int hidden_dim, Rng* rng,
            bool return_sequences = false);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  void CollectParams(std::vector<ParamRef>* params) override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  std::string name_;
  int input_dim_;
  int hidden_dim_;
  bool return_sequences_;
  Tensor wx_;       // {4h, input_dim}
  Tensor wx_grad_;
  Tensor wh_;       // {4h, hidden_dim}
  Tensor wh_grad_;
  Tensor bias_;     // {4h}
  Tensor bias_grad_;

  // Per-timestep caches from the last Forward.
  struct StepCache {
    Tensor x;      // {batch, input_dim}
    Tensor h_prev; // {batch, h}
    Tensor c_prev; // {batch, h}
    Tensor gates;  // {batch, 4h} post-nonlinearity: i, f, g, o
    Tensor c;      // {batch, h}
    Tensor tanh_c; // {batch, h}
  };
  std::vector<StepCache> steps_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_LSTM_H_
