// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_MODEL_ZOO_H_
#define LPSGD_NN_MODEL_ZOO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "nn/layer.h"
#include "nn/network.h"

namespace lpsgd {

// ---------------------------------------------------------------------------
// Part A: stat models of the paper's networks (Figures 3 and 4).
//
// Performance experiments never execute these networks; they only consume
// the parameter-matrix inventory (for codec sizing/cost and per-matrix MPI
// messages), FLOP counts, and the paper's measured single-GPU throughput
// (the calibration point documented in DESIGN.md).
// ---------------------------------------------------------------------------

// Aggregate descriptor for `count` identically-shaped gradient matrices.
// `rows` is the CNTK first-dimension (the per-column length seen by stock
// 1bitSGD); convolution kernels have tiny rows (1-7), dense layers have
// large rows.
struct MatrixStat {
  int64_t rows = 0;
  int64_t cols = 0;
  ParamKind kind = ParamKind::kOther;
  int count = 1;

  int64_t elements_each() const { return rows * cols; }
  int64_t elements_total() const { return elements_each() * count; }
};

struct NetworkStats {
  std::string name;
  std::string dataset;
  int64_t dataset_samples = 0;  // training samples per epoch
  double gflops_per_sample = 0.0;  // forward-pass GFLOPs
  int recipe_epochs = 0;           // published #epochs to convergence
  double initial_learning_rate = 0.0;
  double momentum = 0.9;
  // Published top-1 accuracy reached by the recipe (used by the Figure 16
  // cost/accuracy frontier).
  double recipe_accuracy_percent = 0.0;
  // Measured single-K80 throughput at the 1-GPU batch size (Figure 10,
  // 1-GPU column) — the compute-side calibration point.
  double k80_samples_per_sec = 0.0;
  // Figure 4: global batch size per GPU count (key: #GPUs).
  std::map<int, int> batch_for_gpus;
  // Per-GPU-batch compute-efficiency multipliers relative to the 1-GPU
  // batch (Section 5.2 "Super-Linear Scaling" artefact); defaults to 1.
  std::map<int, double> batch_efficiency;
  std::vector<MatrixStat> matrices;

  int64_t TotalParams() const;
  double ModelBytes() const { return static_cast<double>(TotalParams()) * 4; }
  int NumMatrices() const;

  // Global batch size for `gpus` (must be present in `batch_for_gpus`).
  int BatchForGpus(int gpus) const;
  // Relative compute efficiency at a given per-GPU batch.
  double EfficiencyAt(int per_gpu_batch) const;
};

// All seven networks from Figure 3, in the paper's order.
const std::vector<NetworkStats>& PaperNetworks();

// The five ImageNet networks used in the performance figures (6-15):
// AlexNet, VGG19, ResNet152, ResNet50, BN-Inception.
std::vector<std::string> PerformanceFigureNetworks();

// Looks up a network by name ("AlexNet", "VGG19", "ResNet50", "ResNet110",
// "ResNet152", "BN-Inception", "LSTM").
StatusOr<NetworkStats> FindNetworkStats(const std::string& name);

// ---------------------------------------------------------------------------
// Part B: scaled-down trainable networks for the accuracy experiments
// (Figure 5). Architecture families mirror the paper's: a conv net with
// large dense layers (AlexNet-like), plain deep residual nets
// (ResNet-like), and an LSTM classifier (AN4-like). See DESIGN.md.
// ---------------------------------------------------------------------------

// Multi-layer perceptron over flattened inputs; `dims` lists layer widths
// including input and output, e.g. {64, 128, 10}.
Network BuildMlp(const std::vector<int64_t>& dims, uint64_t seed);

// Conv(3x3) x2 + max-pool pyramid + two dense layers: the AlexNet-style
// mix of convolutional and large fully-connected parameters.
Network BuildMiniAlexNet(int in_channels, int image_size, int num_classes,
                         uint64_t seed);

// Residual network: stem conv + `num_blocks` residual blocks (conv-BN-ReLU
// -conv-BN) + global average pooling + dense classifier. All-convolutional
// like the paper's ResNets.
Network BuildMiniResNet(int in_channels, int image_size, int num_blocks,
                        int width, int num_classes, uint64_t seed);

// Two-stage residual network with a stride-2 downsampling transition and
// a 1x1-convolution projection shortcut at the stage boundary — the
// structural element (tiny 1x1 kernels) behind stock 1bitSGD's
// pathological behaviour on real ResNets.
Network BuildMiniResNetTwoStage(int in_channels, int image_size, int width,
                                int num_classes, uint64_t seed);

// LSTM over {time, frame_dim} sequences + dense classifier.
Network BuildLstmClassifier(int frame_dim, int hidden_dim, int num_classes,
                            uint64_t seed);

// Stacked LSTM classifier with `num_lstm_layers` recurrent layers (the
// paper's AN4 network stacks three LSTM components) + dense classifier.
Network BuildDeepLstmClassifier(int frame_dim, int hidden_dim,
                                int num_lstm_layers, int num_classes,
                                uint64_t seed);

}  // namespace lpsgd

#endif  // LPSGD_NN_MODEL_ZOO_H_
