// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/model_zoo.h"

#include <memory>

#include "base/logging.h"
#include "base/strings.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/pool.h"

namespace lpsgd {

int64_t NetworkStats::TotalParams() const {
  int64_t total = 0;
  for (const MatrixStat& m : matrices) total += m.elements_total();
  return total;
}

int NetworkStats::NumMatrices() const {
  int total = 0;
  for (const MatrixStat& m : matrices) total += m.count;
  return total;
}

int NetworkStats::BatchForGpus(int gpus) const {
  auto it = batch_for_gpus.find(gpus);
  CHECK(it != batch_for_gpus.end())
      << name << " has no batch size for " << gpus << " GPUs";
  return it->second;
}

double NetworkStats::EfficiencyAt(int per_gpu_batch) const {
  auto it = batch_efficiency.find(per_gpu_batch);
  return it == batch_efficiency.end() ? 1.0 : it->second;
}

namespace {

// Matrix inventories are aggregated per layer family; row counts follow
// CNTK's tensor layout (kernel width first for convolutions, output
// features first for dense layers). Parameter totals land within a few
// percent of Figure 3; see DESIGN.md for the approximation note.
std::vector<NetworkStats> MakePaperNetworks() {
  std::vector<NetworkStats> nets;

  {
    NetworkStats n;
    n.name = "AlexNet";
    n.dataset = "ImageNet";
    n.dataset_samples = 1281167;
    n.gflops_per_sample = 1.4;
    n.recipe_epochs = 112;
    n.initial_learning_rate = 0.07;
    n.recipe_accuracy_percent = 58.0;
    n.k80_samples_per_sec = 240.80;
    n.batch_for_gpus = {{1, 256}, {2, 256}, {4, 256}, {8, 256}, {16, 256}};
    // K80 throughput degrades at small per-GPU batches (implied by the
    // NCCL columns of Figure 11, where communication is cheap).
    n.batch_efficiency = {{128, 0.95}, {64, 0.85}, {32, 0.75}, {16, 0.65}};
    n.matrices = {
        {11, 3168, ParamKind::kConvolutional, 1},     // conv1 11x11x3x96
        {5, 122880, ParamKind::kConvolutional, 1},    // conv2 5x5x96x256
        {3, 294912, ParamKind::kConvolutional, 1},    // conv3 3x3x256x384
        {3, 442368, ParamKind::kConvolutional, 1},    // conv4 3x3x384x384
        {3, 294912, ParamKind::kConvolutional, 1},    // conv5 3x3x384x256
        {4096, 9216, ParamKind::kFullyConnected, 1},  // fc6
        {4096, 4096, ParamKind::kFullyConnected, 1},  // fc7
        {1000, 4096, ParamKind::kFullyConnected, 1},  // fc8
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "VGG19";
    n.dataset = "ImageNet";
    n.dataset_samples = 1281167;
    n.gflops_per_sample = 39.0;
    n.recipe_epochs = 80;
    n.initial_learning_rate = 0.1;
    n.recipe_accuracy_percent = 71.0;
    n.k80_samples_per_sec = 12.40;
    n.batch_for_gpus = {{1, 32}, {2, 64}, {4, 128}, {8, 128}, {16, 128}};
    // Small per-GPU batches run disproportionately fast on VGG19
    // (Section 5.2, "Super-Linear Scaling"; reproduced by the authors on a
    // single GPU at batch 16).
    n.batch_efficiency = {{16, 1.95}, {8, 1.6}};
    n.matrices = {
        {3, 576, ParamKind::kConvolutional, 1},
        {3, 12288, ParamKind::kConvolutional, 1},
        {3, 24576, ParamKind::kConvolutional, 1},
        {3, 49152, ParamKind::kConvolutional, 1},
        {3, 98304, ParamKind::kConvolutional, 1},
        {3, 196608, ParamKind::kConvolutional, 3},
        {3, 393216, ParamKind::kConvolutional, 1},
        {3, 786432, ParamKind::kConvolutional, 7},
        {4096, 25088, ParamKind::kFullyConnected, 1},
        {4096, 4096, ParamKind::kFullyConnected, 1},
        {1000, 4096, ParamKind::kFullyConnected, 1},
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "BN-Inception";
    n.dataset = "ImageNet";
    n.dataset_samples = 1281167;
    n.gflops_per_sample = 4.1;
    n.recipe_epochs = 300;
    n.initial_learning_rate = 3.6;
    n.recipe_accuracy_percent = 72.0;
    n.k80_samples_per_sec = 88.30;
    n.batch_for_gpus = {{1, 64}, {2, 128}, {4, 256}, {8, 256}, {16, 256}};
    n.batch_efficiency = {{32, 0.72}, {16, 0.60}};
    n.matrices = {
        {7, 1344, ParamKind::kConvolutional, 1},       // stem 7x7
        {3, 110592, ParamKind::kConvolutional, 1},     // stem 3x3
        {1, 112500, ParamKind::kConvolutional, 40},    // 1x1 reductions
        {3, 83333, ParamKind::kConvolutional, 20},     // 3x3 towers
        {5, 6667, ParamKind::kConvolutional, 6},       // 5x5 towers
        {1000, 1024, ParamKind::kFullyConnected, 1},   // classifier
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "ResNet50";
    n.dataset = "ImageNet";
    n.dataset_samples = 1281167;
    n.gflops_per_sample = 7.7;
    n.recipe_epochs = 120;
    n.initial_learning_rate = 1.0;
    n.recipe_accuracy_percent = 73.0;
    n.k80_samples_per_sec = 47.20;
    n.batch_for_gpus = {{1, 32}, {2, 64}, {4, 128}, {8, 256}, {16, 256}};
    n.batch_efficiency = {{16, 0.90}};
    n.matrices = {
        {7, 1344, ParamKind::kConvolutional, 1},      // conv1 7x7x3x64
        {3, 12288, ParamKind::kConvolutional, 3},     // stage2 3x3
        {3, 49152, ParamKind::kConvolutional, 4},     // stage3 3x3
        {3, 196608, ParamKind::kConvolutional, 6},    // stage4 3x3
        {3, 786432, ParamKind::kConvolutional, 3},    // stage5 3x3
        {1, 370000, ParamKind::kConvolutional, 33},   // 1x1 bottlenecks
        {1000, 2048, ParamKind::kFullyConnected, 1},  // fc
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "ResNet152";
    n.dataset = "ImageNet";
    n.dataset_samples = 1281167;
    n.gflops_per_sample = 22.6;
    n.recipe_epochs = 120;
    n.initial_learning_rate = 1.0;
    n.recipe_accuracy_percent = 75.0;
    n.k80_samples_per_sec = 16.90;
    n.batch_for_gpus = {{1, 16}, {2, 32}, {4, 64}, {8, 128}, {16, 256}};
    n.matrices = {
        {7, 1344, ParamKind::kConvolutional, 1},
        {3, 12288, ParamKind::kConvolutional, 3},
        {3, 49152, ParamKind::kConvolutional, 8},
        {3, 196608, ParamKind::kConvolutional, 36},
        {3, 786432, ParamKind::kConvolutional, 3},
        {1, 280000, ParamKind::kConvolutional, 101},
        {1000, 2048, ParamKind::kFullyConnected, 1},
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "ResNet110";
    n.dataset = "CIFAR-10";
    n.dataset_samples = 50000;
    n.gflops_per_sample = 0.51;
    n.recipe_epochs = 160;
    n.initial_learning_rate = 0.1;
    n.recipe_accuracy_percent = 93.5;
    n.k80_samples_per_sec = 343.70;
    n.batch_for_gpus = {{1, 128}, {2, 128}, {4, 128}, {8, 128}, {16, 128}};
    // Tiny CIFAR batches leave the K80 heavily underutilized.
    n.batch_efficiency = {{64, 0.95}, {32, 0.89}, {16, 0.70}, {8, 0.30}};
    n.matrices = {
        {3, 48, ParamKind::kConvolutional, 1},       // stem 3x3x3x16
        {3, 768, ParamKind::kConvolutional, 36},     // stage1 16ch
        {3, 3072, ParamKind::kConvolutional, 36},    // stage2 32ch
        {3, 12288, ParamKind::kConvolutional, 36},   // stage3 64ch
        {10, 64, ParamKind::kFullyConnected, 1},     // fc
    };
    nets.push_back(std::move(n));
  }

  {
    NetworkStats n;
    n.name = "LSTM";
    n.dataset = "AN4";
    n.dataset_samples = 948;
    n.gflops_per_sample = 0.08;
    n.recipe_epochs = 20;
    n.initial_learning_rate = 0.5;
    n.recipe_accuracy_percent = 92.0;
    n.k80_samples_per_sec = 610.0;
    n.batch_for_gpus = {{1, 16}, {2, 16}};
    n.matrices = {
        {3000, 363, ParamKind::kFullyConnected, 1},  // layer-1 Wx
        {3000, 750, ParamKind::kFullyConnected, 5},  // Wh + upper layers
        {133, 750, ParamKind::kFullyConnected, 1},   // output projection
    };
    nets.push_back(std::move(n));
  }

  return nets;
}

}  // namespace

const std::vector<NetworkStats>& PaperNetworks() {
  static const std::vector<NetworkStats>& kNetworks =
      *new std::vector<NetworkStats>(MakePaperNetworks());
  return kNetworks;
}

std::vector<std::string> PerformanceFigureNetworks() {
  return {"AlexNet", "VGG19", "ResNet152", "ResNet50", "BN-Inception"};
}

StatusOr<NetworkStats> FindNetworkStats(const std::string& name) {
  for (const NetworkStats& n : PaperNetworks()) {
    if (n.name == name) return n;
  }
  return NotFoundError(StrCat("unknown network: ", name));
}

Network BuildMlp(const std::vector<int64_t>& dims, uint64_t seed) {
  CHECK_GE(dims.size(), 2u);
  Rng rng(seed);
  Network net;
  net.Add(std::make_unique<FlattenLayer>("flatten"));
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    net.Add(std::make_unique<DenseLayer>(StrCat("fc", i), dims[i],
                                         dims[i + 1], &rng));
    if (i + 2 < dims.size()) {
      net.Add(std::make_unique<ActivationLayer>(StrCat("relu", i),
                                                ActivationKind::kRelu));
    }
  }
  return net;
}

Network BuildMiniAlexNet(int in_channels, int image_size, int num_classes,
                         uint64_t seed) {
  CHECK_GE(image_size, 8);
  Rng rng(seed);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>("conv1", in_channels, 8,
                                        /*kernel_size=*/3, /*stride=*/1,
                                        /*padding=*/1, &rng));
  net.Add(std::make_unique<ActivationLayer>("relu1", ActivationKind::kRelu));
  net.Add(std::make_unique<MaxPool2dLayer>("pool1", 2, 2));
  net.Add(std::make_unique<Conv2dLayer>("conv2", 8, 16, 3, 1, 1, &rng));
  net.Add(std::make_unique<ActivationLayer>("relu2", ActivationKind::kRelu));
  net.Add(std::make_unique<MaxPool2dLayer>("pool2", 2, 2));
  net.Add(std::make_unique<FlattenLayer>("flatten"));
  const int64_t spatial = image_size / 4;
  const int64_t flat = 16 * spatial * spatial;
  net.Add(std::make_unique<DenseLayer>("fc1", flat, 64, &rng));
  net.Add(std::make_unique<ActivationLayer>("relu3", ActivationKind::kRelu));
  net.Add(std::make_unique<DenseLayer>("fc2", 64, num_classes, &rng));
  return net;
}

Network BuildMiniResNet(int in_channels, int image_size, int num_blocks,
                        int width, int num_classes, uint64_t seed) {
  CHECK_GE(image_size, 4);
  CHECK_GE(num_blocks, 1);
  Rng rng(seed);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>("stem", in_channels, width, 3, 1, 1,
                                        &rng));
  net.Add(std::make_unique<BatchNormLayer>("stem_bn", width));
  net.Add(
      std::make_unique<ActivationLayer>("stem_relu", ActivationKind::kRelu));
  for (int b = 0; b < num_blocks; ++b) {
    std::vector<std::unique_ptr<Layer>> inner;
    inner.push_back(std::make_unique<Conv2dLayer>(StrCat("b", b, "_conv1"),
                                                  width, width, 3, 1, 1,
                                                  &rng));
    inner.push_back(
        std::make_unique<BatchNormLayer>(StrCat("b", b, "_bn1"), width));
    inner.push_back(std::make_unique<ActivationLayer>(
        StrCat("b", b, "_relu"), ActivationKind::kRelu));
    inner.push_back(std::make_unique<Conv2dLayer>(StrCat("b", b, "_conv2"),
                                                  width, width, 3, 1, 1,
                                                  &rng));
    inner.push_back(
        std::make_unique<BatchNormLayer>(StrCat("b", b, "_bn2"), width));
    net.Add(std::make_unique<ResidualBlock>(StrCat("block", b),
                                            std::move(inner)));
    net.Add(std::make_unique<ActivationLayer>(StrCat("b", b, "_out_relu"),
                                              ActivationKind::kRelu));
  }
  net.Add(std::make_unique<GlobalAvgPoolLayer>("gap"));
  net.Add(std::make_unique<DenseLayer>("fc", width, num_classes, &rng));
  return net;
}

Network BuildMiniResNetTwoStage(int in_channels, int image_size, int width,
                                int num_classes, uint64_t seed) {
  CHECK_GE(image_size, 8);
  Rng rng(seed);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>("stem", in_channels, width, 3, 1, 1,
                                        &rng));
  net.Add(std::make_unique<BatchNormLayer>("stem_bn", width));
  net.Add(
      std::make_unique<ActivationLayer>("stem_relu", ActivationKind::kRelu));

  // Stage 1: identity-shortcut block at `width`.
  {
    std::vector<std::unique_ptr<Layer>> inner;
    inner.push_back(
        std::make_unique<Conv2dLayer>("s1_conv1", width, width, 3, 1, 1,
                                      &rng));
    inner.push_back(std::make_unique<BatchNormLayer>("s1_bn1", width));
    inner.push_back(std::make_unique<ActivationLayer>(
        "s1_relu", ActivationKind::kRelu));
    inner.push_back(
        std::make_unique<Conv2dLayer>("s1_conv2", width, width, 3, 1, 1,
                                      &rng));
    inner.push_back(std::make_unique<BatchNormLayer>("s1_bn2", width));
    net.Add(std::make_unique<ResidualBlock>("stage1", std::move(inner)));
    net.Add(std::make_unique<ActivationLayer>("s1_out_relu",
                                              ActivationKind::kRelu));
  }

  // Stage 2: stride-2 downsampling block, channels double, with a 1x1
  // projection shortcut (rows = 1 in the CNTK quantization view).
  {
    std::vector<std::unique_ptr<Layer>> inner;
    inner.push_back(std::make_unique<Conv2dLayer>(
        "s2_conv1", width, 2 * width, 3, /*stride=*/2, /*padding=*/1, &rng));
    inner.push_back(std::make_unique<BatchNormLayer>("s2_bn1", 2 * width));
    inner.push_back(std::make_unique<ActivationLayer>(
        "s2_relu", ActivationKind::kRelu));
    inner.push_back(std::make_unique<Conv2dLayer>(
        "s2_conv2", 2 * width, 2 * width, 3, 1, 1, &rng));
    inner.push_back(std::make_unique<BatchNormLayer>("s2_bn2", 2 * width));

    std::vector<std::unique_ptr<Layer>> projection;
    projection.push_back(std::make_unique<Conv2dLayer>(
        "s2_proj", width, 2 * width, /*kernel_size=*/1, /*stride=*/2,
        /*padding=*/0, &rng));
    projection.push_back(
        std::make_unique<BatchNormLayer>("s2_proj_bn", 2 * width));
    net.Add(std::make_unique<ResidualBlock>("stage2", std::move(inner),
                                            std::move(projection)));
    net.Add(std::make_unique<ActivationLayer>("s2_out_relu",
                                              ActivationKind::kRelu));
  }

  net.Add(std::make_unique<GlobalAvgPoolLayer>("gap"));
  net.Add(
      std::make_unique<DenseLayer>("fc", 2 * width, num_classes, &rng));
  return net;
}

Network BuildLstmClassifier(int frame_dim, int hidden_dim, int num_classes,
                            uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.Add(std::make_unique<LstmLayer>("lstm", frame_dim, hidden_dim, &rng));
  net.Add(std::make_unique<DenseLayer>("fc", hidden_dim, num_classes, &rng));
  return net;
}

Network BuildDeepLstmClassifier(int frame_dim, int hidden_dim,
                                int num_lstm_layers, int num_classes,
                                uint64_t seed) {
  CHECK_GE(num_lstm_layers, 1);
  Rng rng(seed);
  Network net;
  int input_dim = frame_dim;
  for (int layer = 0; layer < num_lstm_layers; ++layer) {
    const bool last = layer + 1 == num_lstm_layers;
    net.Add(std::make_unique<LstmLayer>(StrCat("lstm", layer), input_dim,
                                        hidden_dim, &rng,
                                        /*return_sequences=*/!last));
    input_dim = hidden_dim;
  }
  net.Add(std::make_unique<DenseLayer>("fc", hidden_dim, num_classes, &rng));
  return net;
}

}  // namespace lpsgd
