// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_BATCHNORM_H_
#define LPSGD_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace lpsgd {

// Batch normalization over the channel dimension. Accepts {batch, C, H, W}
// (per-channel statistics over batch*H*W) or {batch, C} (per-feature
// statistics over the batch). Tracks running statistics for evaluation.
class BatchNormLayer : public Layer {
 public:
  BatchNormLayer(std::string name, int channels, float momentum = 0.9f,
                 float epsilon = 1e-5f);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  void CollectParams(std::vector<ParamRef>* params) override;
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

 private:
  std::string name_;
  int channels_;
  float momentum_;
  float epsilon_;
  Tensor gamma_;       // {C}
  Tensor gamma_grad_;  // {C}
  Tensor beta_;        // {C}
  Tensor beta_grad_;   // {C}
  Tensor running_mean_;
  Tensor running_var_;

  // Backward-pass caches from the last training Forward.
  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;
  Shape cached_input_shape_;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_BATCHNORM_H_
