// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/dense.h"

#include <cmath>

#include "base/logging.h"
#include "tensor/ops.h"

namespace lpsgd {

DenseLayer::DenseLayer(std::string name, int64_t in_features,
                       int64_t out_features, Rng* rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_(Shape({out_features, in_features})),
      weight_grad_(Shape({out_features, in_features})),
      bias_(Shape({out_features})),
      bias_grad_(Shape({out_features})) {
  CHECK_GT(in_features, 0);
  CHECK_GT(out_features, 0);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.FillGaussian(rng, stddev);
}

Tensor DenseLayer::Forward(const Tensor& input, bool /*training*/) {
  CHECK_EQ(input.cols(), in_features_) << name_;
  cached_input_ = input;
  Tensor output(Shape({input.rows(), out_features_}));
  Gemm(/*transpose_a=*/false, /*transpose_b=*/true, 1.0f, input, weight_,
       0.0f, &output);
  AddRowBroadcast(bias_, &output);
  return output;
}

Tensor DenseLayer::Backward(const Tensor& output_grad) {
  CHECK_EQ(output_grad.cols(), out_features_) << name_;
  CHECK_EQ(output_grad.rows(), cached_input_.rows()) << name_;
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  Gemm(/*transpose_a=*/true, /*transpose_b=*/false, 1.0f, output_grad,
       cached_input_, 1.0f, &weight_grad_);
  Tensor bias_batch_grad(bias_grad_.shape());
  SumRowsTo(output_grad, &bias_batch_grad);
  Axpy(1.0f, bias_batch_grad, &bias_grad_);
  Tensor input_grad(cached_input_.shape());
  Gemm(/*transpose_a=*/false, /*transpose_b=*/false, 1.0f, output_grad,
       weight_, 0.0f, &input_grad);
  return input_grad;
}

void DenseLayer::CollectParams(std::vector<ParamRef>* params) {
  // CNTK dense weights are stored [out x in]: rows = out, so per-column
  // 1bitSGD buckets have `out` elements (large), which is why stock
  // 1bitSGD behaves well on fully-connected layers.
  params->push_back(ParamRef{name_ + "/W", &weight_, &weight_grad_,
                             Shape({out_features_, in_features_}),
                             ParamKind::kFullyConnected});
  params->push_back(ParamRef{name_ + "/b", &bias_, &bias_grad_,
                             Shape({out_features_}), ParamKind::kBias});
}

Shape DenseLayer::OutputShape(const Shape& input_shape) const {
  CHECK_EQ(input_shape.element_count(), in_features_);
  return Shape({out_features_});
}

}  // namespace lpsgd
