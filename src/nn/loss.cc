// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/loss.h"

#include <cmath>

#include "base/logging.h"
#include "tensor/ops.h"

namespace lpsgd {
namespace {

constexpr double kProbFloor = 1e-12;

}  // namespace

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  const int64_t batch = logits.rows();
  const int64_t classes = logits.cols();
  CHECK_EQ(static_cast<size_t>(batch), labels.size());

  LossResult result;
  Tensor probs(logits.shape());
  SoftmaxRows(logits, &probs);

  result.logits_grad = probs;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t r = 0; r < batch; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    CHECK_GE(label, 0);
    CHECK_LT(label, classes);
    const double p =
        std::max(static_cast<double>(probs.at(r, label)), kProbFloor);
    result.loss_sum += -std::log(p);
    if (ArgMaxRow(probs, r) == label) ++result.correct;
    result.logits_grad.at(r, label) -= 1.0f;
  }
  Scale(inv_batch, &result.logits_grad);
  return result;
}

EvalResult EvaluateSoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int>& labels) {
  const int64_t batch = logits.rows();
  const int64_t classes = logits.cols();
  CHECK_EQ(static_cast<size_t>(batch), labels.size());

  EvalResult result;
  Tensor probs(logits.shape());
  SoftmaxRows(logits, &probs);
  for (int64_t r = 0; r < batch; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    CHECK_GE(label, 0);
    CHECK_LT(label, classes);
    const double p =
        std::max(static_cast<double>(probs.at(r, label)), kProbFloor);
    result.loss_sum += -std::log(p);
    if (ArgMaxRow(probs, r) == label) ++result.correct;
    if (LabelInTopK(logits, r, label, 5)) ++result.correct_top5;
  }
  return result;
}

bool LabelInTopK(const Tensor& logits, int64_t r, int label, int k) {
  const int64_t cols = logits.cols();
  CHECK_GE(label, 0);
  CHECK_LT(label, cols);
  if (k >= cols) return true;
  const float* row = logits.data() + r * cols;
  const float target = row[label];
  // Count entries strictly larger than the label's logit; ties resolve in
  // the label's favor, matching the "at least one output matches" rule.
  int larger = 0;
  for (int64_t c = 0; c < cols; ++c) {
    if (row[c] > target) ++larger;
  }
  return larger < k;
}

}  // namespace lpsgd
