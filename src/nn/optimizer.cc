// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/optimizer.h"

#include "base/logging.h"

namespace lpsgd {

SgdMomentumOptimizer::SgdMomentumOptimizer(float learning_rate,
                                           float momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  CHECK_GT(learning_rate, 0.0f);
  CHECK_GE(momentum, 0.0f);
  CHECK_LT(momentum, 1.0f);
}

void SgdMomentumOptimizer::Step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const ParamRef& param : params) {
      velocity_.emplace_back(param.value->shape());
    }
  }
  CHECK_EQ(velocity_.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const ParamRef& param = params[i];
    Tensor& velocity = velocity_[i];
    CHECK_EQ(velocity.size(), param.value->size()) << param.name;
    float* v = velocity.data();
    float* x = param.value->data();
    const float* g = param.grad->data();
    for (int64_t j = 0; j < velocity.size(); ++j) {
      v[j] = momentum_ * v[j] + g[j];
      x[j] -= learning_rate_ * v[j];
    }
  }
}

}  // namespace lpsgd
