// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_NN_DROPOUT_H_
#define LPSGD_NN_DROPOUT_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace lpsgd {

// Inverted dropout: during training each activation is zeroed with
// probability `rate` and survivors are scaled by 1/(1-rate); evaluation is
// the identity. Masks come from a counter-based stream keyed by an
// internal call counter, so replicas created from the same seed draw
// identical masks — a requirement for lockstep data-parallel training
// (every rank must drop the same units for its shard).
class DropoutLayer : public Layer {
 public:
  DropoutLayer(std::string name, float rate, uint64_t seed);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& output_grad) override;
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

 private:
  std::string name_;
  float rate_;
  uint64_t seed_;
  uint64_t forward_calls_ = 0;
  std::vector<bool> mask_;  // true = kept
  bool last_was_training_ = false;
};

}  // namespace lpsgd

#endif  // LPSGD_NN_DROPOUT_H_
