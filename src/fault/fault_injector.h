// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_FAULT_FAULT_INJECTOR_H_
#define LPSGD_FAULT_FAULT_INJECTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/allreduce.h"
#include "fault/fault_plan.h"
#include "quant/codec.h"
#include "quant/workspace.h"

namespace lpsgd {
namespace fault {

// Everything the trainer needs to survive a FaultPlan (or real faults with
// the same signatures): the plan itself, the exchange retry budget, and
// the checkpoint/recovery policy.
struct FaultToleranceOptions {
  FaultPlan plan;
  ExchangeRetryOptions retry;
  // Take an in-memory recovery snapshot every N completed steps; 0
  // disables checkpointing (a non-crash exchange failure then propagates).
  int checkpoint_every = 0;
  // Ceiling on rollback/degrade recoveries per run, a runaway guard.
  int max_recoveries = 16;
  // Drop a crashed rank and renormalize over survivors instead of failing
  // the run.
  bool degrade_to_survivors = true;

  bool enabled() const {
    return !plan.empty() || retry.enabled() || checkpoint_every > 0;
  }
  [[nodiscard]] Status Validate() const;
};

// Decorator that replays a FaultPlan at the GradientAggregator boundary.
// Injected failures are indistinguishable from real ones to the layers
// above: transient failures return UNAVAILABLE before touching the inner
// engine; corruption runs a real encode → bit-flip → decode probe through
// the codec's checksum path and returns its DATA_LOSS; a crash returns
// ABORTED (RankCrashError) forever after its iteration; a straggler
// inflates the successful exchange's virtual time.
//
// Determinism: events are keyed by iteration, and a per-iteration attempt
// counter — monotonic across trainer rollbacks — decides which attempt
// each fault strikes, so fail@i x2 costs exactly two retries no matter how
// the recovery machinery replays the schedule.
class FaultInjectingAggregator : public GradientAggregator {
 public:
  // `codec_spec` configures the corruption probe's codec (the same one the
  // run exchanges gradients with, so the probe exercises the real wire
  // format).
  [[nodiscard]] static StatusOr<std::unique_ptr<FaultInjectingAggregator>>
  Create(std::unique_ptr<GradientAggregator> inner, FaultPlan plan,
         const CodecSpec& codec_spec);

  std::string Name() const override;
  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override;
  int num_ranks() const override { return inner_->num_ranks(); }
  void CheckpointExchangeState() override {
    inner_->CheckpointExchangeState();
  }
  void RollbackExchangeState() override { inner_->RollbackExchangeState(); }
  void ExportExchangeState(
      std::vector<std::vector<float>>* state) const override {
    inner_->ExportExchangeState(state);
  }
  [[nodiscard]] Status ImportExchangeState(
      const std::vector<std::vector<float>>& state) override {
    return inner_->ImportExchangeState(state);
  }

  GradientAggregator* inner() const { return inner_.get(); }

 private:
  FaultInjectingAggregator(std::unique_ptr<GradientAggregator> inner,
                           FaultPlan plan,
                           std::unique_ptr<GradientCodec> probe_codec);

  // Encodes one victim gradient with the probe codec, flips a seeded bit,
  // and decodes through the checksum path; returns the resulting DataLoss.
  Status RunCorruptionProbe(const std::vector<MatrixSlot>& slots,
                            int64_t iteration, int attempt);

  std::unique_ptr<GradientAggregator> inner_;
  FaultPlan plan_;
  std::unique_ptr<GradientCodec> probe_codec_;
  // Exchange attempts seen per iteration; never reset, so replayed
  // iterations continue the count instead of re-arming consumed faults.
  std::unordered_map<int64_t, int> attempts_;
  // Corruption-probe scratch (reused across probes).
  CodecWorkspace probe_workspace_;
  std::vector<float> probe_error_;
  std::vector<float> probe_out_;
  std::vector<uint8_t> probe_blob_;
};

// Adapter for CreateAggregator's decorator hook: returns an empty function
// when the plan is empty (no decoration), else a factory wrapping the
// engine in a FaultInjectingAggregator.
AggregatorDecorator MakeAggregatorDecorator(const FaultPlan& plan,
                                            const CodecSpec& codec_spec);

}  // namespace fault
}  // namespace lpsgd

#endif  // LPSGD_FAULT_FAULT_INJECTOR_H_
