// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "fault/fault_plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace lpsgd {
namespace fault {
namespace {

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Shortest decimal form that strtod parses back to the same double, so
// ToString/Parse round-trips are exact.
std::string FormatSeconds(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  if (std::strtod(buffer, nullptr) == value) {
    for (int digits = 1; digits < 17; ++digits) {
      char trial[40];
      std::snprintf(trial, sizeof(trial), "%.*g", digits, value);
      if (std::strtod(trial, nullptr) == value) return trial;
    }
  }
  return buffer;
}

// Parses "<int64>" fully; false on trailing garbage or negatives.
bool ParseIteration(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& raw : StrSplit(ToLower(text), ';')) {
    if (raw.empty()) continue;
    const auto eq = raw.find('=');
    if (eq != std::string::npos) {
      const std::string key = raw.substr(0, eq);
      const std::string value = raw.substr(eq + 1);
      if (key != "seed") {
        return InvalidArgumentError(StrCat("unknown fault key: ", raw));
      }
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0') {
        return InvalidArgumentError(StrCat("bad fault seed: ", value));
      }
      plan.seed = static_cast<uint64_t>(seed);
      continue;
    }
    const auto at = raw.find('@');
    if (at == std::string::npos) {
      return InvalidArgumentError(StrCat("missing '@' in fault: ", raw));
    }
    const std::string head = raw.substr(0, at);
    std::string arg = raw.substr(at + 1);

    FaultEvent event;
    if (head == "straggle") {
      event.kind = FaultKind::kStraggle;
      const auto colon = arg.find(':');
      if (colon == std::string::npos) {
        return InvalidArgumentError(
            StrCat("straggle needs <iter>:<seconds>: ", raw));
      }
      if (!ParseIteration(arg.substr(0, colon), &event.iteration)) {
        return InvalidArgumentError(StrCat("bad fault iteration: ", raw));
      }
      const std::string seconds = arg.substr(colon + 1);
      char* end = nullptr;
      event.delay_seconds = std::strtod(seconds.c_str(), &end);
      if (seconds.empty() || end == nullptr || *end != '\0' ||
          event.delay_seconds < 0.0) {
        return InvalidArgumentError(StrCat("bad straggle delay: ", raw));
      }
    } else if (head == "fail" || head == "corrupt" || head == "enospc") {
      event.kind = head == "fail"      ? FaultKind::kTransientFail
                   : head == "corrupt" ? FaultKind::kCorruptWire
                                       : FaultKind::kDiskFull;
      const auto x = arg.find('x');
      if (x != std::string::npos) {
        const std::string count = arg.substr(x + 1);
        char* end = nullptr;
        const long parsed = std::strtol(count.c_str(), &end, 10);
        if (count.empty() || end == nullptr || *end != '\0' || parsed < 1) {
          return InvalidArgumentError(StrCat("bad fault count: ", raw));
        }
        event.count = static_cast<int>(parsed);
        arg = arg.substr(0, x);
      }
      if (!ParseIteration(arg, &event.iteration)) {
        return InvalidArgumentError(StrCat("bad fault iteration: ", raw));
      }
    } else if (head == "crash") {
      event.kind = FaultKind::kRankCrash;
      const auto colon = arg.find(':');
      if (colon == std::string::npos) {
        return InvalidArgumentError(
            StrCat("crash needs <iter>:<rank>: ", raw));
      }
      if (!ParseIteration(arg.substr(0, colon), &event.iteration)) {
        return InvalidArgumentError(StrCat("bad fault iteration: ", raw));
      }
      const std::string rank = arg.substr(colon + 1);
      char* end = nullptr;
      const long parsed = std::strtol(rank.c_str(), &end, 10);
      if (rank.empty() || end == nullptr || *end != '\0' || parsed < 0) {
        return InvalidArgumentError(StrCat("bad crash rank: ", raw));
      }
      event.rank = static_cast<int>(parsed);
    } else if (head == "torn" || head == "shortwrite" || head == "kill") {
      event.kind = head == "torn"        ? FaultKind::kTornWrite
                   : head == "shortwrite" ? FaultKind::kShortWrite
                                          : FaultKind::kKill;
      if (!ParseIteration(arg, &event.iteration)) {
        return InvalidArgumentError(StrCat("bad fault iteration: ", raw));
      }
    } else {
      return InvalidArgumentError(
          StrCat("unrecognized fault: ", raw,
                 " (known: straggle, fail, corrupt, crash, torn, "
                 "shortwrite, enospc, kill, seed=<n>)"));
    }
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::vector<std::string> parts;
  for (const FaultEvent& event : events) {
    switch (event.kind) {
      case FaultKind::kStraggle:
        parts.push_back(StrCat("straggle@", event.iteration, ":",
                               FormatSeconds(event.delay_seconds)));
        break;
      case FaultKind::kTransientFail:
        parts.push_back(event.count == 1
                            ? StrCat("fail@", event.iteration)
                            : StrCat("fail@", event.iteration, "x",
                                     event.count));
        break;
      case FaultKind::kCorruptWire:
        parts.push_back(event.count == 1
                            ? StrCat("corrupt@", event.iteration)
                            : StrCat("corrupt@", event.iteration, "x",
                                     event.count));
        break;
      case FaultKind::kRankCrash:
        parts.push_back(
            StrCat("crash@", event.iteration, ":", event.rank));
        break;
      case FaultKind::kTornWrite:
        parts.push_back(StrCat("torn@", event.iteration));
        break;
      case FaultKind::kShortWrite:
        parts.push_back(StrCat("shortwrite@", event.iteration));
        break;
      case FaultKind::kDiskFull:
        parts.push_back(event.count == 1
                            ? StrCat("enospc@", event.iteration)
                            : StrCat("enospc@", event.iteration, "x",
                                     event.count));
        break;
      case FaultKind::kKill:
        parts.push_back(StrCat("kill@", event.iteration));
        break;
    }
  }
  if (seed != FaultPlan{}.seed) {
    parts.push_back(StrCat("seed=", seed));
  }
  return StrJoin(parts, ";");
}

FaultPlan FaultPlan::WithoutCrashes() const {
  FaultPlan out;
  out.seed = seed;
  for (const FaultEvent& event : events) {
    if (event.kind != FaultKind::kRankCrash) out.events.push_back(event);
  }
  return out;
}

bool FaultPlan::HasStorageFaults() const {
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::kTornWrite ||
        event.kind == FaultKind::kShortWrite ||
        event.kind == FaultKind::kDiskFull) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::KillsAt(int64_t iteration) const {
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::kKill && event.iteration == iteration) {
      return true;
    }
  }
  return false;
}

namespace {

constexpr const char kRankCrashPrefix[] = "rank ";
constexpr const char kRankCrashSuffix[] = " crashed";
constexpr const char kProcessKillPrefix[] = "process killed at iteration ";

}  // namespace

Status RankCrashError(int rank) {
  return AbortedError(StrCat(kRankCrashPrefix, rank, kRankCrashSuffix));
}

bool IsRankCrash(const Status& status, int* rank) {
  if (status.code() != StatusCode::kAborted) return false;
  const std::string& message = status.message();
  const size_t prefix_len = sizeof(kRankCrashPrefix) - 1;
  if (message.rfind(kRankCrashPrefix, 0) != 0) return false;
  char* end = nullptr;
  const long parsed = std::strtol(message.c_str() + prefix_len, &end, 10);
  if (end == nullptr || std::string(end) != kRankCrashSuffix || parsed < 0) {
    return false;
  }
  if (rank != nullptr) *rank = static_cast<int>(parsed);
  return true;
}

Status ProcessKillError(int64_t iteration) {
  return AbortedError(StrCat(kProcessKillPrefix, iteration));
}

bool IsProcessKill(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kProcessKillPrefix, 0) == 0;
}

}  // namespace fault
}  // namespace lpsgd
