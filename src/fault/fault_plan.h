// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_FAULT_FAULT_PLAN_H_
#define LPSGD_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/statusor.h"

namespace lpsgd {
namespace fault {

// The fault taxonomy (DESIGN.md "Fault model and recovery"): every way a
// synchronous gradient exchange can go wrong that the recovery machinery
// handles.
enum class FaultKind {
  kStraggle,       // exchange succeeds but one rank is slow
  kTransientFail,  // exchange fails, identical retry succeeds
  kCorruptWire,    // encoded bytes are corrupted in flight
  kRankCrash,      // a rank dies permanently at a given step
  // Storage verbs, injected by ckpt::FaultInjectingStorage at the durable
  // checkpoint write for the given iteration (not at the exchange):
  kTornWrite,   // write "succeeds" but the bytes on disk are corrupted
  kShortWrite,  // write "succeeds" but only a prefix reaches the disk
  kDiskFull,    // write fails with a transient ENOSPC-style error
  // Process verb, honoured by SyncTrainer: the whole process dies right
  // after committing (and durably checkpointing, if the cadence aligns)
  // the given iteration. Chaos tests restart from disk afterwards.
  kKill,
};

// One scheduled fault. Events are keyed by the trainer iteration at which
// they strike, so a rolled-back-and-replayed schedule re-encounters them
// deterministically.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientFail;
  int64_t iteration = 0;
  // kTransientFail / kCorruptWire: number of consecutive exchange attempts
  // at `iteration` that fail before one succeeds.
  int count = 1;
  // kStraggle: virtual seconds added to the exchange.
  double delay_seconds = 0.0;
  // kRankCrash: the rank that dies.
  int rank = 0;
};

// A seeded, fully deterministic fault schedule, injected at the
// GradientAggregator boundary by FaultInjectingAggregator. The text form
// round-trips through Parse/ToString, mirroring CodecSpec.
struct FaultPlan {
  std::vector<FaultEvent> events;
  // Seeds the corruption probe's choice of victim rank and bit.
  uint64_t seed = 0x5eedfa17ULL;

  bool empty() const { return events.empty(); }

  // Grammar: ';'-separated directives, case-insensitive, order preserved.
  //   straggle@<iter>:<seconds>   straggler delay at iteration <iter>
  //   fail@<iter>                 one transient failure at <iter>
  //   fail@<iter>x<count>         <count> consecutive failures at <iter>
  //   corrupt@<iter>[x<count>]    corrupted wire bytes at <iter>
  //   crash@<iter>:<rank>         rank <rank> dies at iteration <iter>
  //   torn@<iter>                 checkpoint write at <iter> lands torn
  //   shortwrite@<iter>           checkpoint write at <iter> lands truncated
  //   enospc@<iter>[x<count>]     <count> ENOSPC failures at <iter>
  //   kill@<iter>                 process dies after committing <iter>
  //   seed=<n>                    corruption-probe seed
  // Example: "straggle@3:0.5;fail@5x2;torn@6;kill@9;seed=42"
  [[nodiscard]] static StatusOr<FaultPlan> Parse(const std::string& text);

  // Canonical text form; Parse(ToString()) reproduces the plan exactly.
  std::string ToString() const;

  // The plan minus its rank-crash events: what the rebuilt aggregator runs
  // after degrade-to-survivors (the dead rank must not crash again).
  FaultPlan WithoutCrashes() const;

  // True when any event is a storage verb (torn / shortwrite / enospc):
  // the trainer wraps its checkpoint storage in a FaultInjectingStorage
  // only in that case.
  bool HasStorageFaults() const;

  // The kill@ event scheduled at `iteration`, or -1 when none is. (Kill
  // events fire after the iteration commits, so the trainer asks with the
  // post-commit counter.)
  bool KillsAt(int64_t iteration) const;
};

// The permanent-failure error a crashed rank raises, and its inverse: the
// trainer uses IsRankCrash to route ABORTED exchanges into the
// degrade-to-survivors path instead of the rollback-and-retry path.
Status RankCrashError(int rank);
bool IsRankCrash(const Status& status, int* rank);

// The whole-process-death error a kill@ event raises, and its inverse. The
// message is deliberately disjoint from RankCrashError so IsRankCrash never
// routes a kill into the degrade-to-survivors path: a killed process is
// restarted and restored from disk, not renormalized.
Status ProcessKillError(int64_t iteration);
bool IsProcessKill(const Status& status);

}  // namespace fault
}  // namespace lpsgd

#endif  // LPSGD_FAULT_FAULT_PLAN_H_
