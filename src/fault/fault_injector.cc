// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "fault/fault_injector.h"

#include <utility>

#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace lpsgd {
namespace fault {
namespace {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStraggle:
      return "straggle";
    case FaultKind::kTransientFail:
      return "fail";
    case FaultKind::kCorruptWire:
      return "corrupt";
    case FaultKind::kRankCrash:
      return "crash";
    case FaultKind::kTornWrite:
      return "torn";
    case FaultKind::kShortWrite:
      return "shortwrite";
    case FaultKind::kDiskFull:
      return "enospc";
    case FaultKind::kKill:
      return "kill";
  }
  return "unknown";
}

void RecordInjection(FaultKind kind, int64_t iteration, int attempt) {
  if (obs::MetricsEnabled()) obs::Count("fault/injected");
  if (obs::ReportEnabled()) {
    obs::JsonValue fields = obs::JsonValue::Object();
    fields.Set("fault", FaultKindName(kind));
    fields.Set("iteration", iteration);
    fields.Set("attempt", attempt);
    obs::RecordEntry("fault_injected", std::move(fields));
  }
}

}  // namespace

Status FaultToleranceOptions::Validate() const {
  if (checkpoint_every < 0) {
    return InvalidArgumentError(
        StrCat("checkpoint_every must be >= 0, got ", checkpoint_every));
  }
  if (max_recoveries < 0) {
    return InvalidArgumentError(
        StrCat("max_recoveries must be >= 0, got ", max_recoveries));
  }
  if (retry.max_retries < 0 || retry.timeout_seconds < 0.0 ||
      retry.backoff_base_seconds < 0.0) {
    return InvalidArgumentError("retry budgets must be >= 0");
  }
  for (const FaultEvent& event : plan.events) {
    if (event.iteration < 0 || event.count < 1 ||
        event.delay_seconds < 0.0 || event.rank < 0) {
      return InvalidArgumentError(
          StrCat("malformed fault event at iteration ", event.iteration));
    }
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<FaultInjectingAggregator>>
FaultInjectingAggregator::Create(std::unique_ptr<GradientAggregator> inner,
                                 FaultPlan plan,
                                 const CodecSpec& codec_spec) {
  if (inner == nullptr) {
    return InvalidArgumentError(
        "FaultInjectingAggregator needs an inner engine");
  }
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<GradientCodec> probe_codec,
                         codec_spec.Create());
  return std::unique_ptr<FaultInjectingAggregator>(
      new FaultInjectingAggregator(std::move(inner), std::move(plan),
                                   std::move(probe_codec)));
}

FaultInjectingAggregator::FaultInjectingAggregator(
    std::unique_ptr<GradientAggregator> inner, FaultPlan plan,
    std::unique_ptr<GradientCodec> probe_codec)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      probe_codec_(std::move(probe_codec)) {}

std::string FaultInjectingAggregator::Name() const {
  return StrCat(inner_->Name(), " + faults(", plan_.events.size(), ")");
}

Status FaultInjectingAggregator::RunCorruptionProbe(
    const std::vector<MatrixSlot>& slots, int64_t iteration, int attempt) {
  CHECK(!slots.empty());
  const MatrixSlot& slot = slots[0];
  const size_t n = static_cast<size_t>(slot.quant_shape.element_count());
  const int victim = static_cast<int>(
      HashCounter(plan_.seed, static_cast<uint64_t>(iteration)) %
      static_cast<uint64_t>(slot.rank_grads.size()));

  // Encode the victim's real gradient through the run's codec, into probe
  // scratch; a zeroed residual stand-in keeps the caller's error-feedback
  // state untouched.
  probe_error_.assign(n, 0.0f);
  std::vector<float>* error =
      probe_codec_->UsesErrorFeedback() ? &probe_error_ : nullptr;
  const uint64_t tag = comm_internal::ExchangeRankTag(iteration, 0, victim);
  probe_codec_->Encode(slot.rank_grads[static_cast<size_t>(victim)],
                       slot.quant_shape, tag, error, &probe_workspace_,
                       &probe_blob_);

  // Flip one seeded bit and decode through the real checksum path; the
  // mismatch is the DATA_LOSS the caller sees. A different attempt picks a
  // different bit, like a real flaky link.
  const uint64_t total_bits = static_cast<uint64_t>(probe_blob_.size()) * 8;
  CHECK_GT(total_bits, 0u);
  const uint64_t bit =
      HashCounter(plan_.seed ^ static_cast<uint64_t>(attempt),
                  static_cast<uint64_t>(iteration)) %
      total_bits;
  probe_blob_[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));

  probe_out_.assign(n, 0.0f);
  const Status decoded = probe_codec_->Decode(
      probe_blob_.data(), static_cast<int64_t>(probe_blob_.size()),
      slot.quant_shape, &probe_workspace_, probe_out_.data());
  if (decoded.ok()) {
    // A single flipped bit always breaks the FNV-1a word; reaching here
    // means the codec skipped verification.
    return InternalError("corruption probe decoded a tampered blob");
  }
  return decoded;
}

StatusOr<CommStats> FaultInjectingAggregator::AllReduce(
    std::vector<MatrixSlot>* slots, int64_t iteration) {
  CHECK(slots != nullptr);
  const int attempt = attempts_[iteration]++;

  // A crashed rank stays dead: every exchange at or after its iteration
  // aborts before touching the inner engine.
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::kRankCrash &&
        iteration >= event.iteration) {
      RecordInjection(FaultKind::kRankCrash, iteration, attempt);
      return RankCrashError(event.rank);
    }
  }

  // Consecutive-attempt faults: the first `fail_budget` attempts at this
  // iteration fail transiently, the next `corrupt_budget` hit corruption.
  int fail_budget = 0;
  int corrupt_budget = 0;
  double delay_seconds = 0.0;
  for (const FaultEvent& event : plan_.events) {
    if (event.iteration != iteration) continue;
    switch (event.kind) {
      case FaultKind::kTransientFail:
        fail_budget += event.count;
        break;
      case FaultKind::kCorruptWire:
        corrupt_budget += event.count;
        break;
      case FaultKind::kStraggle:
        delay_seconds += event.delay_seconds;
        break;
      case FaultKind::kRankCrash:
        break;  // handled above
      case FaultKind::kTornWrite:
      case FaultKind::kShortWrite:
      case FaultKind::kDiskFull:
        break;  // storage verbs: injected by ckpt::FaultInjectingStorage
      case FaultKind::kKill:
        break;  // process verb: honoured by SyncTrainer after the commit
    }
  }
  if (attempt < fail_budget) {
    RecordInjection(FaultKind::kTransientFail, iteration, attempt);
    return UnavailableError(
        StrCat("injected transient exchange failure at iteration ",
               iteration, ", attempt ", attempt));
  }
  if (attempt < fail_budget + corrupt_budget) {
    RecordInjection(FaultKind::kCorruptWire, iteration, attempt);
    return RunCorruptionProbe(*slots, iteration, attempt);
  }

  LPSGD_ASSIGN_OR_RETURN(CommStats stats,
                         inner_->AllReduce(slots, iteration));
  if (delay_seconds > 0.0) {
    RecordInjection(FaultKind::kStraggle, iteration, attempt);
    stats.comm_seconds += delay_seconds;
  }
  return stats;
}

AggregatorDecorator MakeAggregatorDecorator(const FaultPlan& plan,
                                            const CodecSpec& codec_spec) {
  if (plan.empty()) return nullptr;
  return [plan, codec_spec](std::unique_ptr<GradientAggregator> inner)
             -> StatusOr<std::unique_ptr<GradientAggregator>> {
    LPSGD_ASSIGN_OR_RETURN(
        auto injector,
        FaultInjectingAggregator::Create(std::move(inner), plan, codec_spec));
    return std::unique_ptr<GradientAggregator>(std::move(injector));
  };
}

}  // namespace fault
}  // namespace lpsgd
