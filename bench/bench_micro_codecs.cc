// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Micro-benchmarks (google-benchmark) for the gradient codecs: host-side
// encode and decode throughput per codec and gradient size. These measure
// the actual C++ implementation (the simulator charges GPU-kernel virtual
// time separately through the cost model).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/simd/simd.h"
#include "quant/codec.h"
#include "quant/workspace.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

Tensor MakeGradient(int64_t n) {
  Tensor grad(Shape({n}));
  Rng rng(42);
  grad.FillGaussian(&rng, 1.0f);
  return grad;
}

void RunEncode(benchmark::State& state, const CodecSpec& spec,
               bool column_matrix = false) {
  const int64_t n = state.range(0);
  auto codec = CreateCodec(spec);
  CHECK_OK(codec.status());
  // Column-matrix mode mimics a conv tensor: 3 rows, n/3 columns.
  Tensor grad = MakeGradient(n);
  const Shape shape = column_matrix ? Shape({3, n / 3}) : Shape({n});
  std::vector<float> error(
      (*codec)->UsesErrorFeedback() ? static_cast<size_t>(n) : 0, 0.0f);
  std::vector<float>* error_ptr =
      (*codec)->UsesErrorFeedback() ? &error : nullptr;

  // Steady-state measurement: one reused workspace, like the aggregators'
  // per-slot workspaces — the loop body never allocates.
  CodecWorkspace workspace;
  std::vector<uint8_t> blob;
  uint64_t tag = 0;
  for (auto _ : state) {
    (*codec)->Encode(grad.data(), shape, tag++, error_ptr, &workspace,
                     &blob);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["bytes_per_elem"] =
      static_cast<double>((*codec)->EncodedSizeBytes(shape)) /
      static_cast<double>(n);
}

void RunDecode(benchmark::State& state, const CodecSpec& spec) {
  const int64_t n = state.range(0);
  auto codec = CreateCodec(spec);
  CHECK_OK(codec.status());
  Tensor grad = MakeGradient(n);
  const Shape shape({n});
  std::vector<float> error(
      (*codec)->UsesErrorFeedback() ? static_cast<size_t>(n) : 0, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad.data(), shape, 0,
                   (*codec)->UsesErrorFeedback() ? &error : nullptr, &blob);
  CodecWorkspace workspace;
  std::vector<float> decoded(static_cast<size_t>(n));
  for (auto _ : state) {
    CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                     &workspace, decoded.data()));
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EncodeFullPrecision(benchmark::State& state) {
  RunEncode(state, FullPrecisionSpec());
}
void BM_EncodeQsgd2(benchmark::State& state) {
  RunEncode(state, QsgdSpec(2));
}
void BM_EncodeQsgd4(benchmark::State& state) {
  RunEncode(state, QsgdSpec(4));
}
void BM_EncodeQsgd8(benchmark::State& state) {
  RunEncode(state, QsgdSpec(8));
}
void BM_EncodeQsgd16(benchmark::State& state) {
  RunEncode(state, QsgdSpec(16));
}
void BM_EncodeOneBitReshaped(benchmark::State& state) {
  RunEncode(state, OneBitSgdReshapedSpec(64));
}
// Stock CNTK 1bitSGD on a conv-shaped tensor (3-row columns): the
// pathological per-column case of Section 3.2.
void BM_EncodeOneBitColumnConvShape(benchmark::State& state) {
  RunEncode(state, OneBitSgdSpec(), /*column_matrix=*/true);
}

void BM_EncodeTernGrad(benchmark::State& state) {
  RunEncode(state, TernGradSpec());
}
void BM_EncodeNuq4(benchmark::State& state) {
  RunEncode(state, NuqsgdSpec(4));
}
void BM_EncodeEcq4(benchmark::State& state) {
  RunEncode(state, EcqSgdSpec(4));
}
// Top-K at the paper's 1% density: selection + index-run packing dominate,
// so this is the codec most sensitive to nth_element regressions.
void BM_EncodeTopK1pct(benchmark::State& state) {
  RunEncode(state, TopKSpec(0.01));
}

void BM_DecodeFullPrecision(benchmark::State& state) {
  RunDecode(state, FullPrecisionSpec());
}
void BM_DecodeQsgd2(benchmark::State& state) {
  RunDecode(state, QsgdSpec(2));
}
void BM_DecodeQsgd4(benchmark::State& state) {
  RunDecode(state, QsgdSpec(4));
}
void BM_DecodeQsgd8(benchmark::State& state) {
  RunDecode(state, QsgdSpec(8));
}
void BM_DecodeQsgd16(benchmark::State& state) {
  RunDecode(state, QsgdSpec(16));
}
void BM_DecodeEcq4(benchmark::State& state) {
  RunDecode(state, EcqSgdSpec(4));
}
void BM_DecodeOneBitReshaped(benchmark::State& state) {
  RunDecode(state, OneBitSgdReshapedSpec(64));
}
void BM_DecodeTernGrad(benchmark::State& state) {
  RunDecode(state, TernGradSpec());
}
void BM_DecodeNuq4(benchmark::State& state) {
  RunDecode(state, NuqsgdSpec(4));
}
// Sparse decode is a scatter into a zero-filled dense buffer — measures
// the memset + index-run unpack cost the aggregators pay per rank.
void BM_DecodeTopK1pct(benchmark::State& state) {
  RunDecode(state, TopKSpec(0.01));
}

// Scalar-forced twins: dispatch pinned to the golden reference kernels
// for the duration of the benchmark. Speedup of the vectorized path =
// SIMD bench / scalar twin, both in the committed baseline.
void BM_EncodeQsgd4Scalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunEncode(state, QsgdSpec(4));
}
void BM_EncodeTernGradScalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunEncode(state, TernGradSpec());
}
void BM_EncodeNuq4Scalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunEncode(state, NuqsgdSpec(4));
}
void BM_EncodeEcq4Scalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunEncode(state, EcqSgdSpec(4));
}
void BM_EncodeOneBitReshapedScalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunEncode(state, OneBitSgdReshapedSpec(64));
}
void BM_DecodeQsgd4Scalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunDecode(state, QsgdSpec(4));
}
void BM_DecodeTernGradScalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunDecode(state, TernGradSpec());
}
void BM_DecodeOneBitReshapedScalar(benchmark::State& state) {
  ScopedSimdIsa force_scalar(SimdIsa::kScalar);
  RunDecode(state, OneBitSgdReshapedSpec(64));
}

constexpr int64_t kSmall = 3 << 10;
constexpr int64_t kLarge = 3 << 18;  // ~786k elements

BENCHMARK(BM_EncodeFullPrecision)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeQsgd2)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeQsgd4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeQsgd8)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeQsgd16)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeOneBitReshaped)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeOneBitColumnConvShape)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeTernGrad)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeNuq4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeEcq4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeTopK1pct)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeFullPrecision)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeQsgd2)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeQsgd4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeQsgd8)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeQsgd16)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeEcq4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeOneBitReshaped)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeTernGrad)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeNuq4)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeTopK1pct)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeQsgd4Scalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeTernGradScalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeNuq4Scalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeEcq4Scalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_EncodeOneBitReshapedScalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeQsgd4Scalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeTernGradScalar)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_DecodeOneBitReshapedScalar)->Arg(kSmall)->Arg(kLarge);

}  // namespace
}  // namespace lpsgd

// Expanded BENCHMARK_MAIN() with the BenchRun harness in front: it
// strips --metrics_out/--trace_out before benchmark::Initialize
// sees (and would reject) them.
int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_micro_codecs");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
