// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 8: time per epoch on the NVIDIA DGX-1 with MPI,
// {2, 4, 8} GPUs, for {32bit, QSGD 4bit, 1bitSGD*, 1bitSGD}.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig08_mpi_dgx1");
  lpsgd::bench::PrintEpochTimeBars(
      "Figure 8", "Performance: NVIDIA DGX-1 with MPI, {2,4,8} GPUs.",
      lpsgd::Dgx1(), lpsgd::CommPrimitive::kMpi,
      lpsgd::bench::DgxMpiFigureCodecs(), {2, 4, 8});
  return 0;
}
