// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation (DESIGN.md): communication/computation overlap. CNTK's double
// buffering (Section 3.2.1) lets gradient exchange hide behind the
// remaining backpropagation. This bench bounds what ideal overlap would
// buy each configuration — and shows that quantization and overlap are
// complementary: once communication fits under computation, more
// compression stops helping, which is exactly the NCCL regime of
// Section 5.2.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

void Run(CommPrimitive primitive) {
  bench::PrintHeader(
      StrCat("Ablation: ideal double-buffering overlap (",
             CommPrimitiveName(primitive), ", EC2 x8)"),
      "Additive vs fully-overlapped iteration time per precision.");
  TablePrinter table({"Network", "Precision", "Additive", "Overlapped",
                      "Overlap gain", "Comm hidden?"});
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());
    PerfModel model(*stats, Ec2P2_8xlarge());
    for (const CodecSpec& codec :
         {FullPrecisionSpec(), QsgdSpec(4)}) {
      auto est = model.Estimate(codec, primitive, 8);
      CHECK_OK(est.status());
      const double gain =
          est->IterationSeconds() / est->OverlappedIterationSeconds();
      const bool hidden = est->encode_seconds + est->comm_seconds <=
                          est->compute_seconds;
      table.AddRow({name, codec.ShortLabel(),
                    HumanSeconds(est->IterationSeconds()),
                    HumanSeconds(est->OverlappedIterationSeconds()),
                    StrCat(FormatDouble(gain, 2), "x"),
                    hidden ? "yes" : "no"});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_overlap");
  lpsgd::Run(lpsgd::CommPrimitive::kMpi);
  lpsgd::Run(lpsgd::CommPrimitive::kNccl);
  std::cout << "\nReading: with MPI, even ideal overlap cannot hide "
               "full-precision AlexNet/VGG communication\n(comm > compute), "
               "so quantization still pays; with NCCL + quantization the "
               "exchange hides entirely.\n";
  return 0;
}
