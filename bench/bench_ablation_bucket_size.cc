// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation (DESIGN.md): bucket size. Bucketing throttles quantization
// variance at the price of one extra scale per bucket (Section 3.2.2 /
// Section 5.1 "Impact of Bucket Size"). This bench sweeps the bucket size
// for 2-bit QSGD and reports (a) the wire overhead and (b) the reached
// accuracy on the synthetic task.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

double TrainWith(CodecSpec codec) {
  SyntheticImageOptions train_options;
  train_options.num_classes = 8;
  train_options.channels = 1;
  train_options.height = 6;
  train_options.width = 6;
  train_options.num_samples = 448;
  train_options.signal = 1.0f;
  train_options.noise = 1.4f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 224;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.06f;
  options.codec = codec;
  options.seed = 5;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({36, 24, 8}, seed); }, options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, 10);
  CHECK_OK(metrics.status());
  return metrics->back().test_accuracy;
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_bucket_size");
  using namespace lpsgd;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Ablation: QSGD bucket size (2-bit, L2 scaling)",
      "Smaller buckets cut variance (better accuracy) but add one fp32 "
      "scale per bucket (more bytes).");

  TablePrinter table({"Bucket size", "Extra bytes/elem (scales)",
                      "Test accuracy (%)"});
  for (int64_t bucket : {16L, 64L, 256L, 1024L, 65536L}) {
    CodecSpec spec;
    spec.kind = CodecKind::kQsgd;
    spec.bits = 2;
    spec.bucket_size = bucket;
    spec.norm = QsgdNorm::kL2;
    const double overhead = 4.0 / static_cast<double>(bucket);
    table.AddRow({StrCat(bucket), FormatDouble(overhead, 4),
                  FormatDouble(TrainWith(spec) * 100.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: accuracy degrades as buckets grow (Section "
               "5.1: 4-bit QSGD with 8192 buckets lost >0.6% on AlexNet; "
               "512 recovered it).\n";
  return 0;
}
