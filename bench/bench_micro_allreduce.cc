// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Micro-benchmarks (google-benchmark) for the gradient aggregation
// engines: wall-clock cost of one AllReduce on the host (real data
// movement between simulated ranks), by codec, engine, and rank count.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <memory>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "comm/mpi_reduce_bcast.h"
#include "comm/nccl_ring.h"
#include "machine/specs.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

struct Fixture {
  std::vector<Tensor> grads;
  std::vector<std::vector<float>> errors;
  std::vector<MatrixSlot> slots;

  Fixture(int ranks, int64_t n) {
    Rng rng(1);
    MatrixSlot slot;
    slot.quant_shape = Shape({n});
    for (int r = 0; r < ranks; ++r) {
      grads.emplace_back(Shape({n}));
      grads.back().FillGaussian(&rng, 1.0f);
      errors.emplace_back(static_cast<size_t>(n), 0.0f);
    }
    for (int r = 0; r < ranks; ++r) {
      slot.rank_grads.push_back(grads[static_cast<size_t>(r)].data());
      slot.rank_errors.push_back(&errors[static_cast<size_t>(r)]);
    }
    slots.push_back(std::move(slot));
  }
};

void RunMpi(benchmark::State& state, const CodecSpec& spec) {
  const int ranks = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  auto agg = CreateAggregator(CommPrimitive::kMpi, ranks, spec,
                              Ec2P2_16xlarge(), ExecutionContext::Serial());
  CHECK_OK(agg.status());
  Fixture fixture(ranks, n);
  int64_t iteration = 0;
  for (auto _ : state) {
    auto stats = (*agg)->AllReduce(&fixture.slots, iteration++);
    CHECK_OK(stats.status());
    benchmark::DoNotOptimize(fixture.grads[0].data());
  }
  state.SetItemsProcessed(state.iterations() * n * ranks);
}

void RunNccl(benchmark::State& state, const CodecSpec& spec) {
  const int ranks = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  auto agg = CreateAggregator(CommPrimitive::kNccl, ranks, spec,
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  CHECK_OK(agg.status());
  Fixture fixture(ranks, n);
  int64_t iteration = 0;
  for (auto _ : state) {
    auto stats = (*agg)->AllReduce(&fixture.slots, iteration++);
    CHECK_OK(stats.status());
    benchmark::DoNotOptimize(fixture.grads[0].data());
  }
  state.SetItemsProcessed(state.iterations() * n * ranks);
}

void BM_MpiFullPrecision(benchmark::State& state) {
  RunMpi(state, FullPrecisionSpec());
}
void BM_MpiQsgd4(benchmark::State& state) { RunMpi(state, QsgdSpec(4)); }
void BM_MpiOneBitReshaped(benchmark::State& state) {
  RunMpi(state, OneBitSgdReshapedSpec(64));
}
void BM_NcclFullPrecision(benchmark::State& state) {
  RunNccl(state, FullPrecisionSpec());
}
void BM_NcclSimulatedQsgd4(benchmark::State& state) {
  RunNccl(state, QsgdSpec(4));
}

constexpr int64_t kElems = 1 << 16;

BENCHMARK(BM_MpiFullPrecision)
    ->Args({2, kElems})
    ->Args({4, kElems})
    ->Args({8, kElems})
    ->Args({16, kElems});
BENCHMARK(BM_MpiQsgd4)
    ->Args({2, kElems})
    ->Args({4, kElems})
    ->Args({8, kElems})
    ->Args({16, kElems});
BENCHMARK(BM_MpiOneBitReshaped)->Args({4, kElems})->Args({8, kElems});
BENCHMARK(BM_NcclFullPrecision)
    ->Args({2, kElems})
    ->Args({4, kElems})
    ->Args({8, kElems});
BENCHMARK(BM_NcclSimulatedQsgd4)->Args({4, kElems})->Args({8, kElems});

}  // namespace
}  // namespace lpsgd

// Expanded BENCHMARK_MAIN() with the BenchRun harness in front: it
// strips --metrics_out/--trace_out before benchmark::Initialize
// sees (and would reject) them.
int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_micro_allreduce");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
