// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 5: accuracy per epoch for various networks and
// precision settings. These are REAL training runs of the scaled-down
// architecture family on the synthetic datasets (see DESIGN.md for the
// substitution); the orderings — which precision settings track the
// full-precision curve and which fall away — are the reproduced result.
//
// (a) AlexNet-class conv net: 1bitSGD, 1bitSGD* (d=512), 1bitSGD* (d=64),
//     QSGD 2/4/8bit (+ 32bit reference)
// (b,c) ResNet-class nets: 32bit, 1bitSGD*, QSGD 4/8bit
// (d) CIFAR-class residual net: 32bit, 1bitSGD, QSGD 2/4/8bit
// (e) LSTM on AN4-class data: training loss vs (virtual) time
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

constexpr int kEpochs = 20;

SyntheticImageDataset ImageTrainSet(uint64_t seed, float noise) {
  SyntheticImageOptions options;
  options.num_classes = 10;
  options.channels = 1;
  options.height = 8;
  options.width = 8;
  options.num_samples = 512;
  options.signal = 1.2f;
  options.noise = noise;
  options.seed = seed;
  return SyntheticImageDataset(options);
}

SyntheticImageDataset ImageTestSet(uint64_t seed, float noise) {
  SyntheticImageOptions options;
  options.num_classes = 10;
  options.channels = 1;
  options.height = 8;
  options.width = 8;
  options.num_samples = 256;
  options.signal = 1.2f;
  options.noise = noise;
  options.seed = seed;
  options.sample_offset = 1 << 20;
  return SyntheticImageDataset(options);
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  // Standard step decay, matching the networks' published recipes in
  // miniature.
  options.lr_schedule = {{14, 0.01f}};
  options.seed = 2026;
  return options;
}

void RunAndPrint(const std::string& title,
                 const SyncTrainer::NetworkFactory& factory,
                 const Dataset& train, const Dataset& test,
                 const std::vector<AccuracyRunConfig>& configs) {
  bench::PrintHeader(title, "Test accuracy (%) per epoch.");
  auto series = RunAccuracyComparison(factory, BaseOptions(), train, test,
                                      configs, kEpochs);
  CHECK_OK(series.status());
  std::cout << FormatAccuracyTable(*series, /*print_every=*/3);

  std::cout << "Final accuracies: ";
  for (const AccuracySeries& s : *series) {
    std::cout << s.label << "="
              << FormatDouble(s.FinalTestAccuracy() * 100.0, 1) << "%  ";
  }
  std::cout << "\n";
}

void Figure5a() {
  const auto train = ImageTrainSet(51, 0.8f);
  const auto test = ImageTestSet(51, 0.8f);
  auto factory = [](uint64_t seed) {
    return BuildMiniAlexNet(1, 8, 10, seed);
  };
  // Bucket sizes scale with the miniature model (the paper's d=64/d=512
  // on 62M-parameter AlexNet correspond to d=8/d=64 here: same ratio of
  // bucket size to smallest conv kernel).
  std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"1bitSGD", OneBitSgdSpec(), {}},
      {"1b* coarse", OneBitSgdReshapedSpec(64), {}},
      {"1b* tuned", OneBitSgdReshapedSpec(8), {}},
      {"QSGD 2bit", QsgdSpec(2), {}},
      {"QSGD 4bit", QsgdSpec(4), {}},
      {"QSGD 8bit", QsgdSpec(8), {}},
  };
  RunAndPrint("Figure 5(a) - AlexNet-class conv net on ImageNet-class data",
              factory, train, test, configs);
  std::cout
      << "Paper shape: 4/8-bit QSGD and tuned-bucket 1bitSGD* track 32bit "
         "(paper d=64); 2-bit QSGD\nand oversized buckets (paper d=512) "
         "trail -- Section 5.1's negative results.\n";
}

void Figure5bc() {
  const auto train = ImageTrainSet(52, 0.8f);
  const auto test = ImageTestSet(52, 0.8f);
  auto factory = [](uint64_t seed) {
    return BuildMiniResNet(1, 8, /*num_blocks=*/2, /*width=*/8, 10, seed);
  };
  std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"1bitSGD*", OneBitSgdReshapedSpec(64), {}},
      {"QSGD 4bit", QsgdSpec(4), {}},
      {"QSGD 8bit", QsgdSpec(8), {}},
  };
  RunAndPrint(
      "Figure 5(b,c) - ResNet-class (all-convolutional residual) net",
      factory, train, test, configs);
  std::cout << "Paper shape: all four curves overlap within noise "
               "(ResNet50: 59.90% vs 60.31/60.37/60.05% top-5).\n";
}

void Figure5d() {
  const auto train = ImageTrainSet(53, 0.9f);
  const auto test = ImageTestSet(53, 0.9f);
  auto factory = [](uint64_t seed) {
    return BuildMiniResNet(1, 8, /*num_blocks=*/3, /*width=*/8, 10, seed);
  };
  std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"1bitSGD", OneBitSgdSpec(), {}},
      {"QSGD 2bit", QsgdSpec(2), {}},
      {"QSGD 4bit", QsgdSpec(4), {}},
      {"QSGD 8bit", QsgdSpec(8), {}},
  };
  RunAndPrint("Figure 5(d) - ResNet110-class net on CIFAR-class data",
              factory, train, test, configs);
}

void Figure5e() {
  SyntheticSequenceOptions train_options;
  train_options.num_classes = 8;
  train_options.time_steps = 10;
  train_options.frame_dim = 12;
  train_options.num_samples = 256;
  train_options.noise = 1.2f;
  SyntheticSequenceOptions test_options = train_options;
  test_options.num_samples = 128;
  test_options.sample_offset = 1 << 20;
  const SyntheticSequenceDataset train(train_options);
  const SyntheticSequenceDataset test(test_options);

  auto factory = [](uint64_t seed) {
    return BuildLstmClassifier(12, 20, 8, seed);
  };

  // Virtual time axis: per-iteration time of the paper's AN4 LSTM (2 GPUs,
  // MPI on EC2) at each precision.
  auto lstm_stats = FindNetworkStats("LSTM");
  CHECK_OK(lstm_stats.status());
  PerfModel lstm_model(*lstm_stats, Ec2P2_8xlarge());

  bench::PrintHeader(
      "Figure 5(e) - LSTM on AN4-class data",
      "Training loss vs virtual time (paper LSTM timing, MPI, 2 GPUs).");

  TablePrinter table({"Precision", "Virtual time/epoch", "Loss@3",
                      "Loss@10", "Loss@20", "Final test acc (%)"});
  std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"1bitSGD", OneBitSgdSpec(), {}},
      {"QSGD 2bit", QsgdSpec(2), {}},
      {"QSGD 4bit", QsgdSpec(4), {}},
      {"QSGD 8bit", QsgdSpec(8), {}},
  };
  for (const AccuracyRunConfig& config : configs) {
    TrainerOptions options = BaseOptions();
    options.num_gpus = 2;
    options.global_batch_size = 16;
    options.learning_rate = 0.15f;
    options.codec = config.codec;
    auto est = lstm_model.Estimate(config.codec, CommPrimitive::kMpi, 2);
    CHECK_OK(est.status());
    options.virtual_compute_seconds_per_iter = est->compute_seconds;

    auto trainer = SyncTrainer::Create(factory, options);
    CHECK_OK(trainer.status());
    auto metrics = (*trainer)->Train(train, test, kEpochs);
    CHECK_OK(metrics.status());
    const auto& m = *metrics;
    table.AddRow({config.label,
                  HumanSeconds(m[0].virtual_seconds),
                  FormatDouble(m[2].train_loss, 3),
                  FormatDouble(m[9].train_loss, 3),
                  FormatDouble(m[kEpochs - 1].train_loss, 3),
                  FormatDouble(m[kEpochs - 1].test_accuracy * 100.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: the LSTM tolerates even very low precision "
               "(non-convolutional nets are robust, Section 5.1).\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig05_accuracy");
  lpsgd::Figure5a();
  lpsgd::Figure5bc();
  lpsgd::Figure5d();
  lpsgd::Figure5e();
  return 0;
}
