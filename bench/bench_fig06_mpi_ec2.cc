// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 6: time per epoch on the Amazon EC2 instance with
// MPI, 8 GPUs, for five ImageNet networks across all seven precision
// settings, with the communication/computation split of the paper's
// stacked bars.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig06_mpi_ec2");
  lpsgd::bench::PrintEpochTimeBars(
      "Figure 6", "Performance: Amazon EC2 instance with MPI, 8 GPUs.",
      lpsgd::Ec2P2_8xlarge(), lpsgd::CommPrimitive::kMpi,
      lpsgd::bench::MpiFigureCodecs(), {8});
  return 0;
}
