// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation (DESIGN.md): 1bitSGD error feedback. Algorithm 2's residual
// carry is "critical to preserve accuracy" (Section 2.2); this bench
// trains the same network with and without it, at two bucket sizes.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

struct RunResult {
  double final_train_loss = 0.0;
  double final_test_accuracy = 0.0;
};

RunResult TrainWith(CodecSpec codec) {
  SyntheticImageOptions train_options;
  train_options.num_classes = 8;
  train_options.channels = 1;
  train_options.height = 6;
  train_options.width = 6;
  train_options.num_samples = 448;
  train_options.noise = 1.4f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 224;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.06f;
  options.codec = codec;
  options.seed = 17;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({36, 24, 8}, seed); }, options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, 12);
  CHECK_OK(metrics.status());
  return RunResult{metrics->back().train_loss,
                   metrics->back().test_accuracy};
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_error_feedback");
  using namespace lpsgd;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Ablation: 1bitSGD error feedback",
      "Same training run with and without the residual carry "
      "(Algorithm 2, lines 1 and 4).");
  TablePrinter table({"Variant", "Bucket", "Final train loss",
                      "Test accuracy (%)"});
  for (int64_t bucket : {64L, 512L}) {
    CodecSpec with_ef = OneBitSgdReshapedSpec(bucket);
    CodecSpec without_ef = with_ef;
    without_ef.error_feedback = false;
    const RunResult with = TrainWith(with_ef);
    const RunResult without = TrainWith(without_ef);
    table.AddRow({"with error feedback", StrCat(bucket),
                  FormatDouble(with.final_train_loss, 3),
                  FormatDouble(with.final_test_accuracy * 100.0, 1)});
    table.AddRow({"without error feedback", StrCat(bucket),
                  FormatDouble(without.final_train_loss, 3),
                  FormatDouble(without.final_test_accuracy * 100.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: the error-corrected variant optimizes further "
               "(lower loss floor), especially with coarse buckets.\n";
  return 0;
}
