// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 15: scalability on the NVIDIA DGX-1 with NCCL.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig15_scalability_nccl_dgx1");
  lpsgd::bench::PrintScalabilityFigure(
      "Figure 15",
      "Scalability: NVIDIA DGX-1 with NCCL (samples/sec over 1-GPU 32bit).",
      lpsgd::Dgx1(), lpsgd::CommPrimitive::kNccl,
      {lpsgd::FullPrecisionSpec(), lpsgd::QsgdSpec(4)}, {1, 2, 4, 8});
  return 0;
}
