// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "bench/bench_util.h"

#include <algorithm>
#include <iostream>
#include <string_view>

#include "base/logging.h"
#include "base/simd/simd.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace lpsgd {
namespace bench {

BenchRun::BenchRun(int* argc, char** argv, const std::string& binary_name) {
  CHECK(argc != nullptr);
  // Strip our flags in place so downstream parsers (Google Benchmark)
  // never see them.
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kMetricsFlag = "--metrics_out=";
    constexpr std::string_view kTraceFlag = "--trace_out=";
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      metrics_path_ = std::string(arg.substr(kMetricsFlag.size()));
    } else if (arg.rfind(kTraceFlag, 0) == 0) {
      trace_path_ = std::string(arg.substr(kTraceFlag.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;

  obs::RunReport::Global().set_binary(binary_name);
  // Which kernel table the codecs dispatched to — run reports comparing
  // scalar and SIMD numbers need it to tell the legs apart.
  obs::RunReport::Global().SetMeta("simd_isa",
                                   SimdIsaName(ActiveSimdIsa()));
  if (!metrics_path_.empty()) {
    obs::MetricsRegistry::Global().set_enabled(true);
    obs::RunReport::Global().set_enabled(true);
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Global().set_enabled(true);
  }
}

BenchRun::~BenchRun() {
  if (!metrics_path_.empty()) {
    const Status status = obs::RunReport::Global().WriteFile(
        metrics_path_, &obs::MetricsRegistry::Global());
    if (!status.ok()) {
      LOG(Error) << "failed to write --metrics_out=" << metrics_path_ << ": "
                 << status;
    } else {
      std::cout << "\nwrote run report to " << metrics_path_ << "\n";
    }
  }
  if (!trace_path_.empty()) {
    const Status status =
        obs::Tracer::Global().WriteChromeTraceFile(trace_path_);
    if (!status.ok()) {
      LOG(Error) << "failed to write --trace_out=" << trace_path_ << ": "
                 << status;
    } else {
      std::cout << "wrote Chrome trace to " << trace_path_
                << " (load in chrome://tracing)\n";
    }
  }
}

namespace {

using Table = std::map<PaperRowKey, std::map<int, double>>;

// Figure 10 of the paper: samples/sec with MPI on EC2 P2 instances.
Table MakeFigure10() {
  Table t;
  auto add = [&t](const char* net, const char* prec,
                  std::map<int, double> row) {
    t[PaperRowKey{net, prec}] = std::move(row);
  };
  // AlexNet / ImageNet.
  add("AlexNet", "32bit",
      {{1, 240.80}, {2, 301.45}, {4, 328.00}, {8, 272.90}, {16, 192.10}});
  add("AlexNet", "Q16", {{2, 388.80}, {4, 508.80}, {8, 500.90}, {16, 335.60}});
  add("AlexNet", "Q8", {{2, 424.90}, {4, 544.60}, {8, 739.10}, {16, 535.00}});
  add("AlexNet", "Q4", {{2, 466.50}, {4, 598.70}, {8, 964.90}, {16, 748.50}});
  add("AlexNet", "Q2",
      {{2, 449.20}, {4, 609.15}, {8, 1076.50}, {16, 889.80}});
  add("AlexNet", "1b", {{2, 424.05}, {4, 564.30}, {8, 971.10}, {16, 849.40}});
  add("AlexNet", "1b*", {{2, 370.80}, {4, 476.50}, {8, 761.20}, {16, 712.70}});
  // ResNet50 / ImageNet.
  add("ResNet50", "32bit",
      {{1, 47.20}, {2, 80.80}, {4, 142.40}, {8, 247.90}, {16, 272.30}});
  add("ResNet50", "Q16", {{2, 90.20}, {4, 156.30}, {8, 275.80}, {16, 348.70}});
  add("ResNet50", "Q8", {{2, 92.60}, {4, 162.70}, {8, 313.70}, {16, 416.80}});
  add("ResNet50", "Q4", {{2, 93.90}, {4, 165.70}, {8, 326.10}, {16, 461.20}});
  add("ResNet50", "Q2", {{2, 93.30}, {4, 178.35}, {8, 330.45}, {16, 472.25}});
  add("ResNet50", "1b", {{2, 45.10}, {4, 81.70}, {8, 160.15}, {16, 155.20}});
  add("ResNet50", "1b*", {{2, 88.10}, {4, 156.50}, {8, 296.70}, {16, 442.40}});
  // ResNet110 / CIFAR-10.
  add("ResNet110", "32bit",
      {{1, 343.70}, {2, 555.00}, {4, 957.70}, {8, 1229.10}, {16, 831.60}});
  add("ResNet110", "Q16",
      {{2, 551.00}, {4, 942.70}, {8, 1164.20}, {16, 763.40}});
  add("ResNet110", "Q8",
      {{2, 550.20}, {4, 960.10}, {8, 1193.10}, {16, 759.70}});
  add("ResNet110", "Q4",
      {{2, 571.10}, {4, 957.40}, {8, 1257.10}, {16, 784.30}});
  add("ResNet110", "Q2",
      {{2, 557.20}, {4, 973.10}, {8, 1227.90}, {16, 780.40}});
  add("ResNet110", "1b",
      {{2, 465.60}, {4, 643.30}, {8, 610.90}, {16, 406.90}});
  add("ResNet110", "1b*",
      {{2, 550.40}, {4, 884.80}, {8, 1156.70}, {16, 757.70}});
  // ResNet152 / ImageNet.
  add("ResNet152", "32bit",
      {{1, 16.90}, {2, 26.10}, {4, 45.00}, {8, 73.90}, {16, 113.50}});
  add("ResNet152", "Q16", {{2, 31.20}, {4, 54.50}, {8, 95.50}, {16, 151.00}});
  add("ResNet152", "Q8", {{2, 32.80}, {4, 62.70}, {8, 109.20}, {16, 182.50}});
  add("ResNet152", "Q4", {{2, 33.60}, {4, 60.20}, {8, 121.90}, {16, 203.20}});
  add("ResNet152", "Q2", {{2, 33.50}, {4, 64.35}, {8, 123.55}, {16, 208.50}});
  add("ResNet152", "1b", {{2, 10.55}, {4, 22.10}, {8, 41.40}, {16, 63.15}});
  add("ResNet152", "1b*", {{2, 30.40}, {4, 55.50}, {8, 108.10}, {16, 193.50}});
  // VGG19 / ImageNet.
  add("VGG19", "32bit",
      {{1, 12.40}, {2, 20.40}, {4, 36.30}, {8, 53.95}, {16, 40.60}});
  add("VGG19", "Q16", {{2, 24.80}, {4, 46.40}, {8, 35.80}, {16, 67.80}});
  add("VGG19", "Q8", {{2, 24.20}, {4, 47.50}, {8, 119.50}, {16, 106.60}});
  add("VGG19", "Q4", {{2, 27.00}, {4, 52.30}, {8, 151.65}, {16, 143.80}});
  add("VGG19", "Q2", {{2, 24.60}, {4, 49.35}, {8, 160.35}, {16, 170.50}});
  add("VGG19", "1b", {{2, 22.20}, {4, 43.15}, {8, 117.35}, {16, 120.60}});
  add("VGG19", "1b*", {{2, 22.90}, {4, 44.80}, {8, 99.15}, {16, 134.30}});
  // BN-Inception / ImageNet.
  add("BN-Inception", "32bit",
      {{1, 88.30}, {2, 164.80}, {4, 316.75}, {8, 473.75}, {16, 500.40}});
  add("BN-Inception", "Q16",
      {{2, 171.80}, {4, 337.10}, {8, 482.70}, {16, 592.30}});
  add("BN-Inception", "Q8",
      {{2, 173.60}, {4, 342.50}, {8, 552.90}, {16, 696.30}});
  add("BN-Inception", "Q4",
      {{2, 174.80}, {4, 346.90}, {8, 593.40}, {16, 743.30}});
  add("BN-Inception", "Q2",
      {{2, 173.40}, {4, 343.70}, {8, 591.80}, {16, 747.50}});
  add("BN-Inception", "1b",
      {{2, 127.60}, {4, 236.25}, {8, 336.15}, {16, 321.30}});
  add("BN-Inception", "1b*",
      {{2, 170.30}, {4, 335.10}, {8, 480.50}, {16, 700.40}});
  return t;
}

// Figure 11 of the paper: samples/sec with NCCL on EC2 P2 instances.
Table MakeFigure11() {
  Table t;
  auto add = [&t](const char* net, const char* prec,
                  std::map<int, double> row) {
    t[PaperRowKey{net, prec}] = std::move(row);
  };
  add("AlexNet", "32bit",
      {{1, 240.80}, {2, 458.20}, {4, 625.00}, {8, 1138.30}});
  add("AlexNet", "Q16", {{2, 462.80}, {4, 632.10}, {8, 1157.60}});
  add("AlexNet", "Q8", {{2, 458.40}, {4, 641.80}, {8, 1214.80}});
  add("AlexNet", "Q4", {{2, 471.90}, {4, 659.40}, {8, 1247.70}});
  add("AlexNet", "Q2", {{2, 471.00}, {4, 661.60}, {8, 1229.70}});
  add("ResNet50", "32bit",
      {{1, 47.20}, {2, 93.80}, {4, 164.80}, {8, 291.10}});
  add("ResNet50", "Q16", {{2, 93.70}, {4, 164.50}, {8, 324.20}});
  add("ResNet50", "Q8", {{2, 94.00}, {4, 165.80}, {8, 297.40}});
  add("ResNet50", "Q4", {{2, 95.60}, {4, 167.90}, {8, 298.40}});
  add("ResNet50", "Q2", {{2, 95.50}, {4, 168.20}, {8, 304.10}});
  add("ResNet152", "32bit",
      {{1, 16.90}, {2, 33.60}, {4, 60.10}, {8, 112.10}});
  add("ResNet152", "Q16", {{2, 33.40}, {4, 59.80}, {8, 112.20}});
  add("ResNet152", "Q8", {{2, 33.70}, {4, 60.80}, {8, 115.10}});
  add("ResNet152", "Q4", {{2, 34.20}, {4, 62.10}, {8, 118.70}});
  add("ResNet152", "Q2", {{2, 34.30}, {4, 62.20}, {8, 119.90}});
  add("VGG19", "32bit", {{1, 12.40}, {2, 24.90}, {4, 48.70}, {8, 163.10}});
  add("VGG19", "Q16", {{2, 24.90}, {4, 49.10}, {8, 168.00}});
  add("VGG19", "Q8", {{2, 25.50}, {4, 50.50}, {8, 175.20}});
  add("VGG19", "Q4", {{2, 25.60}, {4, 51.00}, {8, 179.50}});
  add("VGG19", "Q2", {{2, 25.60}, {4, 51.10}, {8, 177.80}});
  add("BN-Inception", "32bit",
      {{1, 88.30}, {2, 175.30}, {4, 342.00}, {8, 486.70}});
  add("BN-Inception", "Q16", {{2, 174.30}, {4, 342.70}, {8, 497.10}});
  add("BN-Inception", "Q8", {{2, 174.50}, {4, 345.30}, {8, 510.10}});
  add("BN-Inception", "Q4", {{2, 178.60}, {4, 349.00}, {8, 598.90}});
  add("BN-Inception", "Q2", {{2, 177.20}, {4, 349.00}, {8, 608.20}});
  return t;
}

}  // namespace

const Table& PaperFigure10() {
  static const Table& kTable = *new Table(MakeFigure10());
  return kTable;
}

const Table& PaperFigure11() {
  static const Table& kTable = *new Table(MakeFigure11());
  return kTable;
}

std::optional<double> PaperValue(const Table& table,
                                 const std::string& network,
                                 const std::string& precision, int gpus) {
  auto row = table.find(PaperRowKey{network, precision});
  if (row == table.end()) return std::nullopt;
  auto cell = row->second.find(gpus);
  if (cell == row->second.end()) return std::nullopt;
  return cell->second;
}

std::vector<CodecSpec> MpiFigureCodecs() {
  return {FullPrecisionSpec(), QsgdSpec(16),        QsgdSpec(8),
          QsgdSpec(4),         QsgdSpec(2),         OneBitSgdReshapedSpec(64),
          OneBitSgdSpec()};
}

std::vector<CodecSpec> NcclFigureCodecs() {
  return {FullPrecisionSpec(), QsgdSpec(16), QsgdSpec(8), QsgdSpec(4),
          QsgdSpec(2)};
}

std::vector<CodecSpec> DgxMpiFigureCodecs() {
  return {FullPrecisionSpec(), QsgdSpec(4), OneBitSgdReshapedSpec(64),
          OneBitSgdSpec()};
}

CodecSpec CodecForShortLabel(const std::string& label) {
  if (label == "32bit") return FullPrecisionSpec();
  if (label == "Q16") return QsgdSpec(16);
  if (label == "Q8") return QsgdSpec(8);
  if (label == "Q4") return QsgdSpec(4);
  if (label == "Q2") return QsgdSpec(2);
  if (label == "1b") return OneBitSgdSpec();
  if (label == "1b*") return OneBitSgdReshapedSpec(64);
  LOG(Fatal) << "unknown precision label: " << label;
  return {};
}

std::string RenderSplitBar(double comm, double compute, double max_total,
                           int width) {
  const double total = comm + compute;
  if (max_total <= 0.0 || total <= 0.0) return "";
  const int total_chars = std::max(
      1, static_cast<int>(total / max_total * width + 0.5));
  int comm_chars =
      static_cast<int>(comm / total * total_chars + 0.5);
  comm_chars = std::min(comm_chars, total_chars);
  // '=' = communication (bottom of the paper's bars), '#' = computation.
  return std::string(static_cast<size_t>(comm_chars), '=') +
         std::string(static_cast<size_t>(total_chars - comm_chars), '#');
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::cout << "\n"
            << "==============================================================="
            << "=\n"
            << figure << "\n"
            << description << "\n"
            << "==============================================================="
            << "=\n";
}

std::string RatioCell(double modeled, std::optional<double> paper) {
  if (!paper.has_value()) return "-";
  return FormatDouble(modeled / *paper, 2);
}

void PrintEpochTimeBars(const std::string& figure_name,
                        const std::string& description,
                        const MachineSpec& machine, CommPrimitive primitive,
                        const std::vector<CodecSpec>& codecs,
                        const std::vector<int>& gpu_counts) {
  PrintHeader(figure_name, description);
  for (const std::string& network : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(network);
    CHECK_OK(stats.status());
    PerfModel model(*stats, machine);

    struct Row {
      std::string label;
      int gpus;
      double comm_hours;
      double compute_hours;
    };
    std::vector<Row> rows;
    double max_total = 0.0;
    for (const CodecSpec& codec : codecs) {
      for (int gpus : gpu_counts) {
        auto est = model.Estimate(codec, primitive, gpus);
        if (!est.ok()) continue;
        const double scale =
            static_cast<double>(stats->dataset_samples) /
            est->global_batch / 3600.0;
        Row row;
        row.label = codec.ShortLabel();
        row.gpus = gpus;
        row.comm_hours = (est->comm_seconds + est->encode_seconds) * scale;
        row.compute_hours = est->compute_seconds * scale;
        max_total = std::max(max_total, row.comm_hours + row.compute_hours);
        rows.push_back(std::move(row));
      }
    }

    std::cout << "\n--- " << network << " - "
              << CommPrimitiveName(primitive) << " ("
              << machine.name << ") ---\n";
    std::cout << "  time per epoch, '=' = communication (incl. "
                 "quantize/unquantize), '#' = computation\n";
    for (const Row& row : rows) {
      const double total = row.comm_hours + row.compute_hours;
      std::cout << "  " << row.label
                << std::string(6 - std::min<size_t>(6, row.label.size()),
                               ' ')
                << "x" << row.gpus << (row.gpus < 10 ? " " : "") << " |"
                << RenderSplitBar(row.comm_hours, row.compute_hours,
                                  max_total, 46)
                << "  " << FormatDouble(total, 2) << " h/epoch ("
                << FormatDouble(row.comm_hours / total * 100.0, 0)
                << "% comm)\n";
    }
  }
}

void PrintScalabilityFigure(const std::string& figure_name,
                            const std::string& description,
                            const MachineSpec& machine,
                            CommPrimitive primitive,
                            const std::vector<CodecSpec>& codecs,
                            const std::vector<int>& gpu_counts) {
  PrintHeader(figure_name, description);
  for (const std::string& network : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(network);
    CHECK_OK(stats.status());
    PerfModel model(*stats, machine);

    std::vector<std::string> header = {"Precision"};
    for (int gpus : gpu_counts) header.push_back(StrCat(gpus, " GPUs"));
    TablePrinter table(std::move(header));
    for (const CodecSpec& codec : codecs) {
      std::vector<std::string> row = {codec.ShortLabel()};
      for (int gpus : gpu_counts) {
        auto s = model.Scalability(codec, primitive, gpus);
        row.push_back(s.ok() ? FormatDouble(*s, 2) : "NA");
      }
      table.AddRow(std::move(row));
    }
    std::cout << "\n--- " << network << " - "
              << CommPrimitiveName(primitive) << " (" << machine.name
              << "), scalability vs 1-GPU 32bit ---\n";
    table.Print(std::cout);
  }
}

}  // namespace bench
}  // namespace lpsgd
