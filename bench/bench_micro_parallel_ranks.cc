// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Micro-benchmark (google-benchmark) for the parallel rank-execution
// engine: end-to-end training throughput (samples/sec) of a 4-rank
// QSGD-4bit run at 1, 2, 4, and 8 host threads, plus the bare aggregator
// exchange at the same thread counts. Results are byte-identical across
// thread counts (a tested invariant); only the wall clock moves.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <memory>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "comm/allreduce.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "machine/specs.h"
#include "nn/model_zoo.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

constexpr int kRanks = 4;
constexpr int64_t kTrainSamples = 256;

SyntheticImageDataset MakeImages(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 10;
  options.channels = 1;
  options.height = 8;
  options.width = 8;
  options.num_samples = n;
  options.signal = 1.2f;
  options.noise = 0.8f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

// One epoch of 4-rank QSGD-4bit MiniAlexNet training per iteration;
// state.range(0) is the host thread count.
void BM_TrainEpochParallelRanks(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto train = MakeImages(kTrainSamples);
  const auto test = MakeImages(16, 1 << 20);

  TrainerOptions options;
  options.num_gpus = kRanks;
  options.global_batch_size = 64;
  options.codec = QsgdSpec(4);
  options.seed = 42;
  options.execution = ExecutionContext::WithThreads(threads);
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMiniAlexNet(1, 8, 10, seed); },
      options);
  CHECK_OK(trainer.status());

  for (auto _ : state) {
    auto metrics = (*trainer)->Train(train, test, 1);
    CHECK_OK(metrics.status());
    benchmark::DoNotOptimize(metrics->back().train_loss);
  }
  state.SetItemsProcessed(state.iterations() * kTrainSamples);
}

// The bare gradient exchange at each thread count (no forward/backward):
// isolates the codec-kernel parallelism inside the MPI aggregator.
void BM_AllReduceParallelRanks(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int64_t kElems = 1 << 16;

  auto agg = CreateAggregator(CommPrimitive::kMpi, kRanks, QsgdSpec(4),
                              Ec2P2_8xlarge(),
                              ExecutionContext::WithThreads(threads));
  CHECK_OK(agg.status());

  Rng rng(1);
  std::vector<Tensor> grads;
  std::vector<std::vector<float>> errors;
  MatrixSlot slot;
  slot.quant_shape = Shape({kElems});
  for (int r = 0; r < kRanks; ++r) {
    grads.emplace_back(Shape({kElems}));
    grads.back().FillGaussian(&rng, 1.0f);
    errors.emplace_back(static_cast<size_t>(kElems), 0.0f);
  }
  for (int r = 0; r < kRanks; ++r) {
    slot.rank_grads.push_back(grads[static_cast<size_t>(r)].data());
    slot.rank_errors.push_back(&errors[static_cast<size_t>(r)]);
  }
  std::vector<MatrixSlot> slots{std::move(slot)};

  int64_t iteration = 0;
  for (auto _ : state) {
    auto stats = (*agg)->AllReduce(&slots, iteration++);
    CHECK_OK(stats.status());
    benchmark::DoNotOptimize(grads[0].data());
  }
  state.SetItemsProcessed(state.iterations() * kElems * kRanks);
}

BENCHMARK(BM_TrainEpochParallelRanks)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllReduceParallelRanks)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace lpsgd

// Expanded BENCHMARK_MAIN() with the BenchRun harness in front: it
// strips --metrics_out/--trace_out before benchmark::Initialize
// sees (and would reject) them.
int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv,
                                   "bench_micro_parallel_ranks");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
