// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation (DESIGN.md): QSGD scaling factor. Section 3.2.2: normalizing
// by the 2-norm yields sparse quantized vectors; normalizing by the max
// element introduces smaller variance and gave the paper better accuracy.
// This bench measures both effects directly on random gradients, plus the
// end accuracy on the synthetic task.
#include <cmath>
#include <iostream>

#include "base/rng.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

struct NormStats {
  double mse = 0.0;
  double sparsity = 0.0;  // fraction of exact zeros after quantization
};

NormStats MeasureNorm(QsgdNorm norm, int bits) {
  CodecSpec spec;
  spec.kind = CodecKind::kQsgd;
  spec.bits = bits;
  spec.bucket_size = 512;
  spec.norm = norm;
  auto codec = CreateCodec(spec);
  CHECK_OK(codec.status());

  const Shape shape({4096});
  Tensor grad(shape);
  Rng rng(9);
  grad.FillGaussian(&rng, 1.0f);

  NormStats stats;
  std::vector<uint8_t> blob;
  std::vector<float> decoded(4096);
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    (*codec)->Encode(grad.data(), shape, static_cast<uint64_t>(t), nullptr,
                     &blob);
    CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                     decoded.data()));
    for (int64_t i = 0; i < 4096; ++i) {
      const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
      stats.mse += d * d;
      if (decoded[static_cast<size_t>(i)] == 0.0f) stats.sparsity += 1.0;
    }
  }
  stats.mse /= trials * 4096.0;
  stats.sparsity /= trials * 4096.0;
  return stats;
}

double TrainWith(QsgdNorm norm) {
  SyntheticImageOptions train_options;
  train_options.num_classes = 8;
  train_options.channels = 1;
  train_options.height = 6;
  train_options.width = 6;
  train_options.num_samples = 448;
  train_options.noise = 1.4f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 224;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.06f;
  options.codec.kind = CodecKind::kQsgd;
  options.codec.bits = 2;
  options.codec.bucket_size = 128;
  options.codec.norm = norm;
  options.seed = 6;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({36, 24, 8}, seed); }, options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, 10);
  CHECK_OK(metrics.status());
  return metrics->back().test_accuracy;
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_scaling_norm");
  using namespace lpsgd;  // NOLINT(build/namespaces)
  bench::PrintHeader("Ablation: QSGD scaling norm (L2 vs max element)",
                     "Variance, sparsity, and end accuracy per norm.");
  TablePrinter table({"Norm", "Bits", "Quantization MSE",
                      "Sparsity (% zeros)", "2-bit test accuracy (%)"});
  for (int bits : {2, 4}) {
    const NormStats l2 = MeasureNorm(QsgdNorm::kL2, bits);
    const NormStats mx = MeasureNorm(QsgdNorm::kMax, bits);
    table.AddRow({"L2", StrCat(bits), FormatDouble(l2.mse, 5),
                  FormatDouble(l2.sparsity * 100.0, 1),
                  bits == 2 ? FormatDouble(TrainWith(QsgdNorm::kL2) * 100.0, 1)
                            : "-"});
    table.AddRow({"max", StrCat(bits), FormatDouble(mx.mse, 5),
                  FormatDouble(mx.sparsity * 100.0, 1),
                  bits == 2 ? FormatDouble(TrainWith(QsgdNorm::kMax) * 100.0, 1)
                            : "-"});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: max-norm has lower variance (better "
               "accuracy); L2-norm yields sparser vectors (Section "
               "3.2.2).\n";
  return 0;
}
