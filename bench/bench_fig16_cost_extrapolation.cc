// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 16.
//
// Left: the price/accuracy frontier of training networks to their
// published recipes on EC2, using the cheapest configuration with 8-bit
// QSGD over NCCL (the paper's setting for this figure).
//
// Right: the Section 6 extrapolation — the speedup of 8-bit over 32-bit
// (NCCL, 8 GPUs) as the AlexNet model size is artificially grown (dummy
// parameters add communication but no computation), as a function of the
// model-size/computation ratio (MB/GFLOPs). Bounded above by the 4x
// bandwidth ratio.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

void PrintCostAccuracyFrontier() {
  bench::PrintHeader(
      "Figure 16 (left)",
      "Price and accuracy of training networks to their published recipe "
      "on EC2 (8-bit QSGD, NCCL).");
  TablePrinter table({"Network", "Config", "Epoch time", "Recipe epochs",
                      "Cost ($)", "Accuracy (%)"});
  for (const char* name : {"AlexNet", "ResNet50", "ResNet152"}) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());

    // Search EC2 configurations for the cheapest recipe cost, as the
    // paper derives from its scalability graphs.
    double best_cost = 1e18;
    int best_gpus = 1;
    MachineSpec best_machine = Ec2P2Xlarge();
    double best_epoch_seconds = 0;
    for (int gpus : {1, 2, 4, 8}) {  // NCCL: at most 8 GPUs
      if (stats->batch_for_gpus.find(gpus) == stats->batch_for_gpus.end()) {
        continue;
      }
      auto machine = Ec2MachineForGpus(gpus);
      CHECK_OK(machine.status());
      PerfModel model(*stats, *machine);
      const CodecSpec codec = gpus == 1 ? FullPrecisionSpec() : QsgdSpec(8);
      auto cost = model.RecipeCostUsd(codec, CommPrimitive::kNccl, gpus);
      if (!cost.ok()) continue;
      if (*cost < best_cost) {
        best_cost = *cost;
        best_gpus = gpus;
        best_machine = *machine;
        auto est = model.Estimate(codec, CommPrimitive::kNccl, gpus);
        CHECK_OK(est.status());
        best_epoch_seconds = est->EpochSeconds(stats->dataset_samples);
      }
    }
    table.AddRow({name,
                  StrCat(best_machine.name, " x", best_gpus, " GPUs"),
                  HumanSeconds(best_epoch_seconds),
                  StrCat(stats->recipe_epochs),
                  FormatDouble(best_cost, 0),
                  FormatDouble(stats->recipe_accuracy_percent, 1)});
  }
  table.Print(std::cout);
  std::cout << "Shape check: cost and accuracy rise monotonically, with "
               "diminishing accuracy returns per dollar\n(AlexNet -> "
               "ResNet-50 is cheap for +15 points; ResNet-50 -> ResNet-152 "
               "costs more for +2).\n";
}

void PrintExtrapolation() {
  bench::PrintHeader(
      "Figure 16 (right)",
      "Speedup of 8-bit (vs 32-bit) over NCCL x8 GPUs as AlexNet's model "
      "size grows; x-axis is model size / computation (MB/GFLOPs).");
  auto stats = FindNetworkStats("AlexNet");
  CHECK_OK(stats.status());
  PerfModel model(*stats, Ec2P2_8xlarge());

  TablePrinter table({"Model scale", "MB/GFLOPs", "Speedup of 8-bit",
                      "Regime"});
  for (double scale : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0,
                       10000.0, 100000.0}) {
    auto q8 =
        model.EstimateScaledModel(QsgdSpec(8), CommPrimitive::kNccl, 8,
                                  scale);
    auto fp = model.EstimateScaledModel(FullPrecisionSpec(),
                                        CommPrimitive::kNccl, 8, scale);
    CHECK_OK(q8.status());
    CHECK_OK(fp.status());
    const double speedup =
        fp->IterationSeconds() / q8->IterationSeconds();
    const char* regime = scale <= 1.0          ? "existing network"
                         : scale <= 3000.0     ? "dummy model"
                                               : "extrapolation";
    table.AddRow({FormatDouble(scale, 0),
                  FormatDouble(model.ModelSizeToComputeRatio(scale), 0),
                  StrCat(FormatDouble(speedup, 2), "x"), regime});
  }
  table.Print(std::cout);
  std::cout << "Shape check: speedup grows with the MB/GFLOPs ratio and "
               "stays below the 4x bandwidth bound;\nthe residual gap is "
               "the quantize/unquantize kernel time a native low-precision "
               "NCCL would pay.\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig16_cost_extrapolation");
  lpsgd::PrintCostAccuracyFrontier();
  lpsgd::PrintExtrapolation();
  return 0;
}
