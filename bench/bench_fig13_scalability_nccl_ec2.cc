// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 13: scalability on the Amazon EC2 instance with NCCL
// (NCCL supports at most 8 GPUs, Section 5.2).
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig13_scalability_nccl_ec2");
  lpsgd::bench::PrintScalabilityFigure(
      "Figure 13",
      "Scalability: Amazon EC2 instance with NCCL "
      "(samples/sec over 1-GPU 32bit).",
      lpsgd::Ec2P2_8xlarge(), lpsgd::CommPrimitive::kNccl,
      lpsgd::bench::NcclFigureCodecs(), {1, 2, 4, 8});
  return 0;
}
