// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Shared helpers for the figure-reproduction benchmark binaries: the
// paper's published measurements (for side-by-side comparison), codec
// lists per figure, and rendering helpers.
#ifndef LPSGD_BENCH_BENCH_UTIL_H_
#define LPSGD_BENCH_BENCH_UTIL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "quant/codec.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace bench {

// Per-binary observability harness. Construction strips the flags
//   --metrics_out=<path>   write the structured run report (JSON) at exit
//   --trace_out=<path>     write a Chrome trace_event JSON at exit
// from argc/argv (so they never reach other flag parsers, e.g. Google
// Benchmark's) and, when either is given, enables the global metrics
// registry / tracer / run report. Destruction writes the requested files.
// Every bench main constructs one as its first statement.
class BenchRun {
 public:
  BenchRun(int* argc, char** argv, const std::string& binary_name);
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;
  ~BenchRun();

  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

// One row key of Figures 10/11: (network, precision short label).
struct PaperRowKey {
  std::string network;
  std::string precision;  // "32bit", "Q16", "Q8", "Q4", "Q2", "1b", "1b*"

  bool operator<(const PaperRowKey& other) const {
    if (network != other.network) return network < other.network;
    return precision < other.precision;
  }
};

// Published samples/sec from Figure 10 (MPI on EC2), keyed by
// (network, precision) -> {gpus -> samples/sec}. Missing entries ("/" in
// the paper) are absent.
const std::map<PaperRowKey, std::map<int, double>>& PaperFigure10();

// Published samples/sec from Figure 11 (NCCL on EC2).
const std::map<PaperRowKey, std::map<int, double>>& PaperFigure11();

// Looks up a published value; nullopt when the paper has "/" there.
std::optional<double> PaperValue(
    const std::map<PaperRowKey, std::map<int, double>>& table,
    const std::string& network, const std::string& precision, int gpus);

// The precision configurations of each figure, in the paper's column
// order.
std::vector<CodecSpec> MpiFigureCodecs();   // 32, Q16, Q8, Q4, Q2, 1b*, 1b
std::vector<CodecSpec> NcclFigureCodecs();  // 32, Q16, Q8, Q4, Q2
std::vector<CodecSpec> DgxMpiFigureCodecs();  // 32, Q4, 1b*, 1b

// Resolves the codec spec for a short label used by the tables.
CodecSpec CodecForShortLabel(const std::string& label);

// Renders a horizontal ASCII bar of `value` against `max_value`, split
// into a communication part and a computation part (the paper's stacked
// bars), e.g. "=====####  1.23 h".
std::string RenderSplitBar(double comm, double compute, double max_total,
                           int width);

// Prints a standard benchmark header.
void PrintHeader(const std::string& figure, const std::string& description);

// "model/paper" ratio formatted for tables; "-" when paper has no value.
std::string RatioCell(double modeled, std::optional<double> paper);

// Renders one epoch-time bar figure (the layout of Figures 6-9): for each
// ImageNet network, a bar per (codec, gpu count) showing hours/epoch split
// into communication ('=', includes encode/decode) and computation ('#').
void PrintEpochTimeBars(const std::string& figure_name,
                        const std::string& description,
                        const MachineSpec& machine, CommPrimitive primitive,
                        const std::vector<CodecSpec>& codecs,
                        const std::vector<int>& gpu_counts);

// Renders one scalability figure (the layout of Figures 12-15): per
// network, scalability (samples/sec over 1-GPU 32bit samples/sec) per
// codec per GPU count.
void PrintScalabilityFigure(const std::string& figure_name,
                            const std::string& description,
                            const MachineSpec& machine,
                            CommPrimitive primitive,
                            const std::vector<CodecSpec>& codecs,
                            const std::vector<int>& gpu_counts);

}  // namespace bench
}  // namespace lpsgd

#endif  // LPSGD_BENCH_BENCH_UTIL_H_
