// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Extension bench: Top-K sparse communication (Aji & Heafield), which the
// paper evaluates qualitatively in Section 7: extremely small densities
// (<0.5%) suffice for some tasks, but on Inception-class image nets the
// paper observed >10% density was needed — and at that density the
// 8-bytes-per-component index overhead erodes the traffic reduction below
// what QSGD achieves. This bench reproduces both halves: accuracy vs
// density on the synthetic task, and wire bytes vs QSGD.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

double TrainWith(CodecSpec codec) {
  SyntheticImageOptions train_options;
  train_options.num_classes = 10;
  train_options.channels = 1;
  train_options.height = 8;
  train_options.width = 8;
  train_options.num_samples = 512;
  train_options.signal = 1.2f;
  train_options.noise = 0.8f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 256;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.lr_schedule = {{14, 0.01f}};
  options.codec = codec;
  options.seed = 23;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMiniAlexNet(1, 8, 10, seed); },
      options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, 20);
  CHECK_OK(metrics.status());
  return metrics->back().test_accuracy;
}

void AccuracyVsDensity() {
  bench::PrintHeader(
      "Extension: Top-K sparsification - accuracy vs density",
      "Conv net trained with sparse gradient exchange at varying "
      "densities (32bit and QSGD 4bit for reference).");
  TablePrinter table({"Codec", "Test accuracy (%)"});
  table.AddRow({"32bit", FormatDouble(TrainWith(FullPrecisionSpec()) * 100.0,
                                      1)});
  table.AddRow(
      {"QSGD 4bit", FormatDouble(TrainWith(QsgdSpec(4)) * 100.0, 1)});
  for (double density : {0.25, 0.10, 0.02, 0.005}) {
    table.AddRow({TopKSpec(density).Label(),
                  FormatDouble(TrainWith(TopKSpec(density)) * 100.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape (Section 7): convolutional image nets need "
               "fairly high densities to match full precision;\nvery "
               "aggressive sparsity degrades accuracy.\n";
}

void WireBytesVsQsgd() {
  bench::PrintHeader(
      "Extension: Top-K sparsification - wire bytes on the paper's nets",
      "Index+value pairs cost 8 bytes per kept component; at 10%+ density "
      "the reduction stalls near 1.25-2.5x while QSGD 4bit holds ~7.9x.");
  TablePrinter table({"Network", "fp32", "TopK 1%", "TopK 10%", "TopK 25%",
                      "QSGD 4bit"});
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());
    auto bytes_for = [&](const CodecSpec& spec) {
      auto codec = CreateCodec(spec);
      CHECK_OK(codec.status());
      int64_t total = 0;
      for (const MatrixStat& m : stats->matrices) {
        total += (*codec)->EncodedSizeBytes(Shape({m.rows, m.cols})) *
                 m.count;
      }
      return total;
    };
    const double fp = static_cast<double>(bytes_for(FullPrecisionSpec()));
    auto cell = [&](const CodecSpec& spec) {
      const double bytes = static_cast<double>(bytes_for(spec));
      return StrCat(HumanBytes(bytes), " (", FormatDouble(fp / bytes, 1),
                    "x)");
    };
    table.AddRow({name, HumanBytes(fp), cell(TopKSpec(0.01)),
                  cell(TopKSpec(0.10)), cell(TopKSpec(0.25)),
                  cell(QsgdSpec(4))});
  }
  table.Print(std::cout);
  std::cout << "Also note: sparse exchange is not efficiently supported by "
               "MPI/NCCL collectives (Section 7),\nso these byte counts "
               "are optimistic for Top-K.\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_extension_topk");
  lpsgd::AccuracyVsDensity();
  lpsgd::WireBytesVsQsgd();
  return 0;
}
