// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 7: time per epoch on the Amazon EC2 instance with
// NCCL, 8 GPUs (low precision simulated per Section 4.4).
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig07_nccl_ec2");
  lpsgd::bench::PrintEpochTimeBars(
      "Figure 7", "Performance: Amazon EC2 instance with NCCL, 8 GPUs.",
      lpsgd::Ec2P2_8xlarge(), lpsgd::CommPrimitive::kNccl,
      lpsgd::bench::NcclFigureCodecs(), {8});
  return 0;
}
