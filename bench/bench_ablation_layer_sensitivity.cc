// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation: layer-type sensitivity (Section 5.1, "Impact of Layer
// Types"). Convolutional layers are more sensitive to quantization noise
// than fully-connected layers; this bench trains the AlexNet-class conv
// net with 2-bit QSGD applied to (a) all layers, (b) only convolutional
// layers, (c) only fully-connected layers.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

void Run() {
  SyntheticImageOptions train_options;
  train_options.num_classes = 10;
  train_options.channels = 1;
  train_options.height = 8;
  train_options.width = 8;
  train_options.num_samples = 512;
  train_options.signal = 1.2f;
  train_options.noise = 0.8f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 256;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions base;
  base.num_gpus = 4;
  base.global_batch_size = 32;
  base.learning_rate = 0.05f;
  base.lr_schedule = {{14, 0.01f}};
  base.seed = 31;

  QuantizationPolicyOptions conv_only;
  conv_only.quantize_fully_connected = false;
  QuantizationPolicyOptions fc_only;
  fc_only.quantize_convolutional = false;

  std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"Q2 all layers", QsgdSpec(2), {}},
      {"Q2 conv only", QsgdSpec(2), conv_only},
      {"Q2 fc only", QsgdSpec(2), fc_only},
  };
  auto series = RunAccuracyComparison(
      [](uint64_t seed) { return BuildMiniAlexNet(1, 8, 10, seed); }, base,
      train, test, configs, 20);
  CHECK_OK(series.status());

  bench::PrintHeader(
      "Ablation: layer-type sensitivity to aggressive quantization",
      "2-bit QSGD applied to different layer families of the "
      "AlexNet-class conv net.");
  std::cout << FormatAccuracyTable(*series, /*print_every=*/2);

  // Parameter shares per layer family, for the per-weight comparison.
  Network probe = BuildMiniAlexNet(1, 8, 10, 0);
  int64_t conv_params = 0, fc_params = 0;
  for (const ParamRef& p : probe.Params()) {
    if (p.kind == ParamKind::kConvolutional) {
      conv_params += p.value->size();
    } else if (p.kind == ParamKind::kFullyConnected) {
      fc_params += p.value->size();
    }
  }
  std::cout << "Convolutional parameters: " << conv_params
            << ", fully-connected parameters: " << fc_params << "\n";
  std::cout << "Paper shape (Section 5.1): convolutional layers are more "
               "sensitive PER WEIGHT -- quantizing the small conv family ("
            << FormatDouble(
                   100.0 * conv_params / (conv_params + fc_params), 0)
            << "% of parameters) costs about as much accuracy as\n"
               "quantizing the dense majority, and quantizing everything "
               "at 2 bits fails outright.\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_layer_sensitivity");
  lpsgd::Run();
  return 0;
}
