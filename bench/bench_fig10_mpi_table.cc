// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 10: samples/second with MPI on Amazon EC2 P2
// instances, for six networks x seven precision settings x {1,2,4,8,16}
// GPUs. Each cell shows the modeled value with the paper's measured value
// in parentheses.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

const char* kPrecisions[] = {"32bit", "Q16", "Q8", "Q4", "Q2", "1b", "1b*"};

void PrintNetworkTable(const std::string& network) {
  auto stats = FindNetworkStats(network);
  CHECK_OK(stats.status());
  bench::PrintHeader(
      StrCat("Figure 10 - ", network, " (", stats->dataset, ")"),
      "Samples per second (MPI). Cells: modeled (paper).");

  TablePrinter table({"Precision", "Bucket", "1 GPU", "2 GPUs", "4 GPUs",
                      "8 GPUs", "16 GPUs"});
  for (const char* precision : kPrecisions) {
    const CodecSpec spec = bench::CodecForShortLabel(precision);
    std::vector<std::string> row = {
        precision, spec.kind == CodecKind::kFullPrecision ||
                           spec.kind == CodecKind::kOneBitSgd
                       ? "/"
                       : StrCat(spec.bucket_size)};
    for (int gpus : {1, 2, 4, 8, 16}) {
      // 1-GPU runs are full-precision only, as in the paper.
      if (gpus == 1 && spec.kind != CodecKind::kFullPrecision) {
        row.push_back("/");
        continue;
      }
      if (stats->batch_for_gpus.find(gpus) == stats->batch_for_gpus.end()) {
        row.push_back("NA");
        continue;
      }
      auto machine = Ec2MachineForGpus(gpus);
      CHECK_OK(machine.status());
      auto est = EstimateConfiguration(network, *machine, spec,
                                       CommPrimitive::kMpi, gpus);
      CHECK_OK(est.status());
      const auto paper =
          bench::PaperValue(bench::PaperFigure10(), network, precision, gpus);
      std::string cell = FormatDouble(est->SamplesPerSecond(), 1);
      if (paper.has_value()) {
        cell += StrCat(" (", FormatDouble(*paper, 1), ")");
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig10_mpi_table");
  for (const char* network : {"AlexNet", "ResNet50", "ResNet110",
                              "ResNet152", "VGG19", "BN-Inception"}) {
    lpsgd::PrintNetworkTable(network);
  }
  std::cout << "\nShape checks to compare against the paper: quantized rows "
               "beat 32bit at 8/16 GPUs on AlexNet/VGG19;\nstock 1b falls "
               "below 32bit on ResNet50/152 and BN-Inception; 1b* repairs "
               "it.\n";
  return 0;
}
