// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Extension bench: multi-node training (Section 5.4). "NCCL is currently
// not fully supported for large GPU deployments, such as multi-node or
// supercomputer setups. In these cases, an MPI-based implementation is
// necessary." This bench projects the study onto two p2.8xlarge nodes
// joined by 10 GbE: NCCL is unavailable, the inter-node link is slower
// than intra-node PCIe, and quantization becomes decisive rather than
// optional.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

void Run() {
  bench::PrintHeader(
      "Extension: multi-node MPI projection (2x p2.8xlarge over 10GbE)",
      "Samples/sec at 16 GPUs across two nodes; NCCL cannot span nodes, "
      "so MPI carries everything.");

  const MachineSpec cluster = Ec2Cluster2x8();
  const MachineSpec single = Ec2P2_16xlarge();

  TablePrinter table({"Network", "Precision", "1 node x16 (MPI)",
                      "2 nodes x16 (MPI)", "Quantization speedup 2-node"});
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());
    PerfModel on_single(*stats, single);
    PerfModel on_cluster(*stats, cluster);

    double cluster_fp = 0.0;
    for (const CodecSpec& codec : {FullPrecisionSpec(), QsgdSpec(4)}) {
      auto single_est = on_single.Estimate(codec, CommPrimitive::kMpi, 16);
      auto cluster_est = on_cluster.Estimate(codec, CommPrimitive::kMpi, 16);
      CHECK_OK(single_est.status());
      CHECK_OK(cluster_est.status());
      if (codec.kind == CodecKind::kFullPrecision) {
        cluster_fp = cluster_est->SamplesPerSecond();
      }
      table.AddRow(
          {name, codec.ShortLabel(),
           FormatDouble(single_est->SamplesPerSecond(), 1),
           FormatDouble(cluster_est->SamplesPerSecond(), 1),
           codec.kind == CodecKind::kFullPrecision
               ? "-"
               : StrCat(FormatDouble(
                            cluster_est->SamplesPerSecond() / cluster_fp, 2),
                        "x")});
    }
  }
  table.Print(std::cout);

  // NCCL is rejected outright on the cluster.
  auto stats = FindNetworkStats("AlexNet");
  CHECK_OK(stats.status());
  PerfModel model(*stats, cluster);
  auto nccl = model.Estimate(FullPrecisionSpec(), CommPrimitive::kNccl, 16);
  std::cout << "NCCL on the 2-node cluster: "
            << (nccl.ok() ? "unexpectedly available!"
                          : nccl.status().ToString())
            << "\n";
  std::cout << "Reading: on the slower inter-node fabric the quantization "
               "speedups exceed the single-node\nfigures -- the regime the "
               "paper extrapolates toward in Section 6.\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_extension_multinode");
  lpsgd::Run();
  return 0;
}
