// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 11: samples/second with NCCL on Amazon EC2 P2
// instances (up to 8 GPUs; NCCL does not support more, Section 5.2).
// Low-precision rows use the paper's NCCL simulation: exact fp32 ring
// sums, codec-sized payloads.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

const char* kPrecisions[] = {"32bit", "Q16", "Q8", "Q4", "Q2"};

void PrintNetworkTable(const std::string& network) {
  auto stats = FindNetworkStats(network);
  CHECK_OK(stats.status());
  bench::PrintHeader(
      StrCat("Figure 11 - ", network, " (", stats->dataset, ")"),
      "Samples per second (NCCL). Cells: modeled (paper).");

  TablePrinter table(
      {"Precision", "Bucket", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});
  for (const char* precision : kPrecisions) {
    const CodecSpec spec = bench::CodecForShortLabel(precision);
    std::vector<std::string> row = {
        precision, spec.kind == CodecKind::kFullPrecision
                       ? "/"
                       : StrCat(spec.bucket_size)};
    for (int gpus : {1, 2, 4, 8}) {
      if (gpus == 1 && spec.kind != CodecKind::kFullPrecision) {
        row.push_back("/");
        continue;
      }
      auto machine = Ec2MachineForGpus(gpus);
      CHECK_OK(machine.status());
      auto est = EstimateConfiguration(network, *machine, spec,
                                       CommPrimitive::kNccl, gpus);
      CHECK_OK(est.status());
      const auto paper =
          bench::PaperValue(bench::PaperFigure11(), network, precision, gpus);
      std::string cell = FormatDouble(est->SamplesPerSecond(), 1);
      if (paper.has_value()) {
        cell += StrCat(" (", FormatDouble(*paper, 1), ")");
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig11_nccl_table");
  for (const char* network : {"AlexNet", "ResNet50", "ResNet152", "VGG19",
                              "BN-Inception"}) {
    lpsgd::PrintNetworkTable(network);
  }
  std::cout << "\nShape check: NCCL 32bit already scales well, so the "
               "quantized rows improve it only marginally\n(the paper's "
               "Insight 2/4); compare with the MPI table where the gap is "
               "3-4x.\n";
  return 0;
}
