// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Extension bench: data-adaptive quantization levels (ZipML). Section 2.3:
// "There are algorithms in which quantization levels are distributed to
// further minimize variance ... We implemented this for gradient but does
// not observe significant improvement." This bench reproduces that
// experiment: the adaptive placement measurably cuts quantization
// variance, but end-to-end accuracy moves by at most noise.
#include <iostream>

#include "base/rng.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

double MeasureMse(const CodecSpec& spec) {
  auto codec = CreateCodec(spec);
  CHECK_OK(codec.status());
  const Shape shape({4096});
  Tensor grad(shape);
  Rng rng(12);
  grad.FillGaussian(&rng, 1.0f);

  double total = 0.0;
  std::vector<uint8_t> blob;
  std::vector<float> decoded(4096);
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    (*codec)->Encode(grad.data(), shape, static_cast<uint64_t>(t), nullptr,
                     &blob);
    CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                     decoded.data()));
    for (int64_t i = 0; i < 4096; ++i) {
      const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
      total += d * d;
    }
  }
  return total / trials / 4096.0;
}

double TrainWith(const CodecSpec& codec) {
  SyntheticImageOptions train_options;
  train_options.num_classes = 10;
  train_options.channels = 1;
  train_options.height = 8;
  train_options.width = 8;
  train_options.num_samples = 512;
  train_options.signal = 1.2f;
  train_options.noise = 0.8f;
  SyntheticImageOptions test_options = train_options;
  test_options.num_samples = 256;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.lr_schedule = {{14, 0.01f}};
  options.codec = codec;
  options.seed = 41;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMiniAlexNet(1, 8, 10, seed); },
      options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, 20);
  CHECK_OK(metrics.status());
  return metrics->back().test_accuracy;
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_extension_adaptive_levels");
  using namespace lpsgd;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Extension: ZipML-style adaptive quantization levels (Section 2.3)",
      "Variance-minimizing level placement vs QSGD's uniform grid, at the "
      "same wire width.");
  TablePrinter table({"Codec", "Quantization MSE", "Wire bytes (2048 el.)",
                      "Test accuracy (%)"});
  for (int bits : {2, 4}) {
    for (bool adaptive : {false, true}) {
      const CodecSpec spec =
          adaptive ? AdaptiveQsgdSpec(bits) : QsgdSpec(bits);
      auto codec = CreateCodec(spec);
      CHECK_OK(codec.status());
      table.AddRow({spec.Label(), FormatDouble(MeasureMse(spec), 5),
                    StrCat((*codec)->EncodedSizeBytes(Shape({2048}))),
                    FormatDouble(TrainWith(spec) * 100.0, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "Paper shape (Section 2.3): adaptive levels cut the "
               "quantization variance, but the end accuracy\nshows no "
               "significant improvement -- matching \"we implemented this "
               "for gradient but does not\nobserve significant "
               "improvement.\"\n";
  return 0;
}
