// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 14: scalability on the NVIDIA DGX-1 with MPI.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig14_scalability_mpi_dgx1");
  lpsgd::bench::PrintScalabilityFigure(
      "Figure 14",
      "Scalability: NVIDIA DGX-1 with MPI (samples/sec over 1-GPU 32bit).",
      lpsgd::Dgx1(), lpsgd::CommPrimitive::kMpi,
      lpsgd::bench::DgxMpiFigureCodecs(), {1, 2, 4, 8});
  return 0;
}
