// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Ablation (DESIGN.md): small-matrix bypass. Section 3.2.2: matrices with
// few elements are sent at full precision because quantizing them costs
// kernel time and saves almost nothing — the threshold keeps >99% of
// parameters quantized. This bench shows, per network, how many matrices
// the policy bypasses and what the bypass does to the modeled iteration
// time.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "quant/policy.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

void PrintPolicyEffect() {
  bench::PrintHeader(
      "Ablation: small-matrix bypass (QSGD 4bit, MPI, EC2 x8)",
      "Matrices bypassed by the >=99% coverage policy and the effect of "
      "disabling the bypass.");

  TablePrinter table({"Network", "Matrices", "Bypassed", "Params covered",
                      "Iter (policy)", "Iter (quantize all)"});
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());

    std::vector<Shape> shapes;
    std::vector<ParamKind> kinds;
    for (const MatrixStat& m : stats->matrices) {
      for (int c = 0; c < m.count; ++c) {
        shapes.push_back(Shape({m.rows, m.cols}));
        kinds.push_back(m.kind);
      }
    }
    QuantizationPolicyOptions policy;
    policy.always_bypass_biases = false;
    const auto decision = ChooseQuantizedMatrices(shapes, kinds, policy);
    int bypassed = 0;
    int64_t covered = 0, total = 0;
    for (size_t i = 0; i < shapes.size(); ++i) {
      total += shapes[i].element_count();
      if (decision[i]) {
        covered += shapes[i].element_count();
      } else {
        ++bypassed;
      }
    }

    // Iteration time with the policy (the PerfModel default) vs a
    // hypothetical "quantize everything" run: the difference is the extra
    // kernel-launch cost of the tiny matrices minus their byte savings.
    PerfModel model(*stats, Ec2P2_8xlarge());
    auto with_policy = model.Estimate(QsgdSpec(4), CommPrimitive::kMpi, 8);
    CHECK_OK(with_policy.status());
    // Re-estimate with a zero-threshold policy by lowering the coverage
    // target to force everything through quantization is equivalent to
    // covered == total, which for these inventories only adds the handful
    // of small matrices; report the delta analytically.
    const CommCostModel cost(Ec2P2_8xlarge());
    auto codec = CreateCodec(QsgdSpec(4));
    CHECK_OK(codec.status());
    double extra_encode = 0.0;
    int64_t byte_delta = 0;
    for (size_t i = 0; i < shapes.size(); ++i) {
      if (decision[i]) continue;
      const int64_t n = shapes[i].element_count();
      extra_encode +=
          3.0 * cost.QuantKernelSeconds(n, (*codec)->NumChunks(shapes[i]));
      byte_delta += (*codec)->EncodedSizeBytes(shapes[i]) - n * 4;
    }
    const double all_iter = with_policy->IterationSeconds() + extra_encode +
                            2.0 * 7.0 / 8.0 * byte_delta /
                                cost.MpiBandwidthBytesPerSec(8);

    table.AddRow({name, StrCat(shapes.size()), StrCat(bypassed),
                  StrCat(FormatDouble(100.0 * covered / total, 2), "%"),
                  HumanSeconds(with_policy->IterationSeconds()),
                  HumanSeconds(all_iter)});
  }
  table.Print(std::cout);
  std::cout << "Shape check: coverage stays >= 99% everywhere, matching "
               "Section 3.2.2's tuning rule.\n";
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_ablation_small_matrix");
  lpsgd::PrintPolicyEffect();
  return 0;
}
