// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 9: time per epoch on the NVIDIA DGX-1 with NCCL,
// {2, 4, 8} GPUs, for {32bit, QSGD 4bit}.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig09_nccl_dgx1");
  lpsgd::bench::PrintEpochTimeBars(
      "Figure 9", "Performance: NVIDIA DGX-1 with NCCL, {2,4,8} GPUs.",
      lpsgd::Dgx1(), lpsgd::CommPrimitive::kNccl,
      {lpsgd::FullPrecisionSpec(), lpsgd::QsgdSpec(4)}, {2, 4, 8});
  return 0;
}
