// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates Figure 12: scalability on the Amazon EC2 instance with MPI.
#include "bench/bench_util.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_fig12_scalability_mpi_ec2");
  lpsgd::bench::PrintScalabilityFigure(
      "Figure 12",
      "Scalability: Amazon EC2 instance with MPI "
      "(samples/sec over 1-GPU 32bit).",
      lpsgd::Ec2P2_16xlarge(), lpsgd::CommPrimitive::kMpi,
      lpsgd::bench::MpiFigureCodecs(), {1, 2, 4, 8, 16});
  return 0;
}
