// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Regenerates the experimental-setup tables of the paper: Figure 1
// (datasets), Figure 2 (machines), Figure 3 (networks), and Figure 4
// (batch sizes). Everything is printed from the library's registries, so
// this binary doubles as a consistency check of the encoded setup.
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "machine/specs.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

void PrintFigure1() {
  bench::PrintHeader("Figure 1", "Statistics of datasets.");
  TablePrinter table({"Dataset", "# Training", "# Validation", "# classes",
                      "Task"});
  table.AddRow({"ImageNet", "1.3M", "50k", "1000", "Image"});
  table.AddRow({"CIFAR-10", "50k", "10k", "10", "Image"});
  table.AddRow({"AN4", "948", "130", "NA", "Speech"});
  table.Print(std::cout);
  std::cout << "(Repro note: experiments run on synthetic stand-ins with "
               "the same generative roles; see DESIGN.md.)\n";
}

void PrintFigure2() {
  bench::PrintHeader("Figure 2", "Statistics of machines.");
  TablePrinter table({"Instance", "# CPU cores", "GPUs", "TFLOPS (single)",
                      "$/hour"});
  for (const MachineSpec& m : PaperMachines()) {
    table.AddRow({m.name, StrCat(m.cpu_cores),
                  StrCat(m.num_gpus, " x ", m.gpu.name),
                  StrCat(m.num_gpus, " x ", FormatDouble(m.gpu.fp32_tflops, 2)),
                  StrCat("$", FormatDouble(m.price_per_hour_usd, 1))});
  }
  table.Print(std::cout);
}

void PrintFigure3() {
  bench::PrintHeader("Figure 3", "Statistics of networks.");
  TablePrinter table({"Task", "Network", "Dataset", "Params", "# epochs",
                      "Initial LR", "GFLOPs/sample"});
  for (const NetworkStats& n : PaperNetworks()) {
    table.AddRow({n.dataset == "AN4" ? "Speech" : "Image", n.name, n.dataset,
                  StrCat(FormatDouble(n.TotalParams() / 1e6, 1), "M"),
                  StrCat(n.recipe_epochs),
                  FormatDouble(n.initial_learning_rate, 2),
                  FormatDouble(n.gflops_per_sample, 2)});
  }
  table.Print(std::cout);
}

void PrintFigure4() {
  bench::PrintHeader("Figure 4", "Batch sizes used per network and # GPUs.");
  TablePrinter table(
      {"Network", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs", "16 GPUs"});
  for (const NetworkStats& n : PaperNetworks()) {
    std::vector<std::string> row = {n.name};
    for (int gpus : {1, 2, 4, 8, 16}) {
      auto it = n.batch_for_gpus.find(gpus);
      row.push_back(it == n.batch_for_gpus.end() ? "NA"
                                                 : StrCat(it->second));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::bench::BenchRun bench_run(&argc, argv, "bench_setup_tables");
  lpsgd::PrintFigure1();
  lpsgd::PrintFigure2();
  lpsgd::PrintFigure3();
  lpsgd::PrintFigure4();
  return 0;
}
